(* Tests for the geographic-zone world: plane geometry, random-waypoint
   mobility, zone crossing = join/leave semantics, and the emergent
   churn the register experiences. *)

open Dds_sim
open Dds_geo

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float = check (Alcotest.float 1e-9)
let time = Time.of_int

(* ------------------------------------------------------------------ *)
(* Point *)

let test_point_geometry () =
  let a = Point.make ~x:0.0 ~y:0.0 and b = Point.make ~x:3.0 ~y:4.0 in
  check_float "distance" 5.0 (Point.distance a b);
  check_bool "within" true (Point.within b ~center:a ~radius:5.0);
  check_bool "boundary inclusive" true (Point.within b ~center:a ~radius:5.0);
  check_bool "outside" false (Point.within b ~center:a ~radius:4.9)

let test_point_towards () =
  let from = Point.origin and goal = Point.make ~x:10.0 ~y:0.0 in
  let mid = Point.towards ~from ~goal ~step:4.0 in
  check_float "partial step x" 4.0 mid.Point.x;
  check_float "partial step y" 0.0 mid.Point.y;
  let landed = Point.towards ~from:mid ~goal ~step:100.0 in
  check_bool "overshoot lands on goal" true (Point.distance landed goal = 0.0);
  let stay = Point.towards ~from:goal ~goal ~step:1.0 in
  check_bool "already there" true (Point.distance stay goal = 0.0)

let test_point_random_in_box () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 200 do
    let p = Point.random_in_box rng ~width:30.0 ~height:7.0 in
    check_bool "in box" true
      (p.Point.x >= 0.0 && p.Point.x <= 30.0 && p.Point.y >= 0.0 && p.Point.y <= 7.0)
  done

(* ------------------------------------------------------------------ *)
(* Mobility *)

let test_walker_moves_at_speed () =
  let rng = Rng.create ~seed:7 in
  let w = Mobility.create rng ~width:100.0 ~height:100.0 ~speed:2.5 in
  let before = Mobility.position w in
  Mobility.step w rng;
  let after = Mobility.position w in
  check_bool "moved at most speed" true (Point.distance before after <= 2.5 +. 1e-9);
  check_bool "moved at all" true (Point.distance before after > 0.0)

let test_walker_zero_speed_is_static () =
  let rng = Rng.create ~seed:7 in
  let w = Mobility.create rng ~width:100.0 ~height:100.0 ~speed:0.0 in
  let before = Mobility.position w in
  for _ = 1 to 50 do
    Mobility.step w rng
  done;
  check_bool "static" true (Point.distance before (Mobility.position w) = 0.0)

let test_walker_stays_in_box () =
  let rng = Rng.create ~seed:11 in
  let w = Mobility.create rng ~width:20.0 ~height:20.0 ~speed:6.0 in
  for _ = 1 to 500 do
    Mobility.step w rng;
    let p = Mobility.position w in
    check_bool "in box" true
      (p.Point.x >= 0.0 && p.Point.x <= 20.0 && p.Point.y >= 0.0 && p.Point.y <= 20.0)
  done

let test_walker_invalid () =
  let rng = Rng.create ~seed:1 in
  check_bool "negative speed" true
    (try
       ignore (Mobility.create rng ~width:10.0 ~height:10.0 ~speed:(-1.0));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Zone world *)

let test_world_never_born_empty () =
  (* Even a seed where no walker lands in the zone starts with one
     founder (teleported to the centre). *)
  for seed = 0 to 20 do
    let w = Zone_world.create (Zone_world.default_config ~seed ~speed:1.0) in
    check_bool "population >= 1" true (Zone_world.zone_population w >= 1)
  done

let test_world_static_walkers_no_churn () =
  let w = Zone_world.create (Zone_world.default_config ~seed:5 ~speed:0.0) in
  Zone_world.start w ~until:(time 300);
  Zone_world.start_activity w ~read_rate:1.0 ~write_every:20 ~until:(time 300);
  Zone_world.run_until w (time 330);
  let entries, exits = Zone_world.crossings w in
  check_int "no entries" 0 entries;
  check_int "no exits" 0 exits;
  check_float "churn zero" 0.0 (Zone_world.emergent_churn w);
  let r = Zone_world.regularity w in
  check_bool "register regular" true (Dds_spec.Regularity.is_ok r);
  check_bool "reads flowed" true (r.Dds_spec.Regularity.checked_reads > 200)

let test_world_crossings_balance () =
  let w = Zone_world.create (Zone_world.default_config ~seed:9 ~speed:2.0) in
  Zone_world.start w ~until:(time 500);
  Zone_world.run_until w (time 520);
  let entries, exits = Zone_world.crossings w in
  check_bool "plenty of crossings" true (entries > 50);
  (* Entries and exits differ at most by the current population. *)
  check_bool "balanced" true (abs (entries - exits) <= Zone_world.zone_population w + 1)

let test_world_emergent_churn_grows_with_speed () =
  let churn speed =
    let w = Zone_world.create (Zone_world.default_config ~seed:5 ~speed) in
    Zone_world.start w ~until:(time 500);
    Zone_world.run_until w (time 520);
    Zone_world.emergent_churn w
  in
  let slow = churn 0.5 and fast = churn 4.0 in
  check_bool "monotone in speed" true (fast > (2.0 *. slow))

let test_world_register_safe_below_speed_limit () =
  (* Speed 1.0: emergent churn ~0.02, well under 1/(3*3) = 0.111. *)
  let w = Zone_world.create (Zone_world.default_config ~seed:13 ~speed:1.0) in
  Zone_world.start w ~until:(time 800);
  Zone_world.start_activity w ~read_rate:1.0 ~write_every:15 ~until:(time 800);
  Zone_world.run_until w (time 850);
  let r = Zone_world.regularity w in
  check_bool "regular" true (Dds_spec.Regularity.is_ok r);
  check_bool "joins completed" true (r.Dds_spec.Regularity.checked_joins > 50);
  check_bool "reads completed" true (r.Dds_spec.Regularity.checked_reads > 400)

let test_world_fast_transit_starves_joins () =
  (* Speed 16: transit time through the zone is shorter than the
     3*delta join, so (with retrying joins) nobody new ever activates
     and the register goes quiet — liveness collapse, not corruption. *)
  let w = Zone_world.create (Zone_world.default_config ~seed:5 ~speed:16.0) in
  Zone_world.start w ~until:(time 800);
  Zone_world.start_activity w ~read_rate:1.0 ~write_every:15 ~until:(time 800);
  Zone_world.run_until w (time 850);
  let r = Zone_world.regularity w in
  check_int "no join ever completes" 0 r.Dds_spec.Regularity.checked_joins;
  check_bool "almost no reads" true (r.Dds_spec.Regularity.checked_reads < 20);
  check_int "yet zero violations" 0 (List.length r.Dds_spec.Regularity.violations)

let test_world_reentry_gets_fresh_identity () =
  let w = Zone_world.create (Zone_world.default_config ~seed:9 ~speed:2.0) in
  Zone_world.start w ~until:(time 500);
  Zone_world.run_until w (time 520);
  let entries, _ = Zone_world.crossings w in
  (* Far more identities were issued than walkers exist: re-entries are
     new processes. *)
  let identities =
    List.length (Dds_churn.Membership.records (Zone_world.membership w))
  in
  check_bool "identities = founders + entries" true (identities > 40 && entries > 40);
  check_bool "more identities than walkers" true (identities > 40)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let prop_towards_never_overshoots =
  QCheck2.Test.make ~name:"towards never overshoots the goal" ~count:300
    QCheck2.Gen.(
      tup5 (float_range 0.0 50.0) (float_range 0.0 50.0) (float_range 0.0 50.0)
        (float_range 0.0 50.0) (float_range 0.01 20.0))
    (fun (x1, y1, x2, y2, step) ->
      let from = Point.make ~x:x1 ~y:y1 and goal = Point.make ~x:x2 ~y:y2 in
      let next = Point.towards ~from ~goal ~step in
      Point.distance next goal <= Point.distance from goal +. 1e-9)

let () =
  Alcotest.run "dds_geo"
    [
      ( "point",
        [
          Alcotest.test_case "geometry" `Quick test_point_geometry;
          Alcotest.test_case "towards" `Quick test_point_towards;
          Alcotest.test_case "random in box" `Quick test_point_random_in_box;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "moves at speed" `Quick test_walker_moves_at_speed;
          Alcotest.test_case "zero speed static" `Quick test_walker_zero_speed_is_static;
          Alcotest.test_case "stays in box" `Quick test_walker_stays_in_box;
          Alcotest.test_case "invalid" `Quick test_walker_invalid;
        ] );
      ( "zone-world",
        [
          Alcotest.test_case "never born empty" `Quick test_world_never_born_empty;
          Alcotest.test_case "static walkers no churn" `Quick
            test_world_static_walkers_no_churn;
          Alcotest.test_case "crossings balance" `Quick test_world_crossings_balance;
          Alcotest.test_case "churn grows with speed" `Quick
            test_world_emergent_churn_grows_with_speed;
          Alcotest.test_case "safe below speed limit" `Slow
            test_world_register_safe_below_speed_limit;
          Alcotest.test_case "fast transit starves joins" `Slow
            test_world_fast_transit_starves_joins;
          Alcotest.test_case "re-entry fresh identity" `Quick
            test_world_reentry_gets_fresh_identity;
        ] );
      qsuite "geo-props" [ prop_towards_never_overshoots ];
    ]
