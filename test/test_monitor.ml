(* The streaming assumption/safety monitors: seeded synthetic streams
   force each violation kind; a compliant real run fires nothing; and
   the trace -> history bridge reconstructs the in-process regularity
   report byte for byte. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
module M = Dds_monitor.Monitor

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let st at ev = { Event.at = Time.of_int at; ev }

let monitors vs = List.map (fun (v : M.violation) -> v.M.monitor) vs

(* ------------------------------------------------------------------ *)
(* Synthetic violation scenarios *)

(* n=10, delta=3: bound 1/(3*3) with a 9-tick window means more than
   10 membership changes of one kind in the window cross it. *)
let churn_cfg =
  {
    (M.default ~n:10 ~delta:3) with
    M.churn_bound = Some (1.0 /. 9.0);
    churn_window = 9;
    liveness_bound = None;
    inversions = false;
  }

let founding ~n = List.init n (fun i -> st 0 (Event.Node_join { node = i }))

let test_churn_violation () =
  let burst =
    (* 3 joins per tick from t=1: the window holds 3*t joins, crossing
       10 at t=4. *)
    List.concat_map
      (fun t -> List.init 3 (fun i -> st t (Event.Node_join { node = 100 + (10 * t) + i })))
      [ 1; 2; 3; 4; 5 ]
  in
  let vs = M.run churn_cfg (founding ~n:10 @ burst) in
  check Alcotest.(list string) "one churn episode" [ "churn" ] (monitors vs);
  check_int "first offending tick" 4 (Time.to_int (List.hd vs).M.at)

let test_churn_compliant_quiet () =
  let slow =
    (* One join every 3 ticks: 3-4 changes per window, well under 10. *)
    List.init 8 (fun i -> st (3 * (i + 1)) (Event.Node_join { node = 100 + i }))
  in
  check Alcotest.(list string) "no violations" []
    (monitors (M.run churn_cfg (founding ~n:10 @ slow)))

let test_churn_episode_rearms () =
  let burst t0 =
    List.concat_map
      (fun t ->
        List.init 4 (fun i -> st (t0 + t) (Event.Node_join { node = (100 * t0) + (10 * t) + i })))
      [ 0; 1; 2 ]
  in
  (* Two bursts separated by a long quiet gap: the monitor re-arms in
     between, so each burst is one finding. *)
  let vs = M.run churn_cfg (founding ~n:10 @ burst 1 @ burst 50) in
  check Alcotest.(list string) "two episodes" [ "churn"; "churn" ] (monitors vs)

let majority_cfg =
  {
    (M.default ~n:5 ~delta:3) with
    M.majority = true;
    liveness_bound = None;
    inversions = false;
  }

let test_majority_violation () =
  let evs =
    founding ~n:5
    @ [
        st 5 (Event.Node_leave { node = 0 });
        st 6 (Event.Node_leave { node = 1 });
        (* down to 3 = n/2+1: still fine *)
        st 7 (Event.Node_leave { node = 2 });
        (* 2 < 3: violation *)
        st 10
          (Event.Op_end
             {
               span = 9;
               node = 9;
               op = Event.Join;
               outcome = Event.Completed;
               value = Some { Event.data = 0; sn = 0 };
             });
        (* back to 3: re-armed *)
        st 12 (Event.Node_leave { node = 3 });
        (* 2 again: second episode *)
      ]
  in
  let vs = M.run majority_cfg evs in
  check Alcotest.(list string) "two majority episodes" [ "majority"; "majority" ]
    (monitors vs);
  check_int "first fired when active dropped to 2" 7 (Time.to_int (List.hd vs).M.at)

let liveness_cfg =
  { (M.default ~n:5 ~delta:3) with M.liveness_bound = Some 10; inversions = false }

let test_liveness_violation () =
  let evs =
    founding ~n:5
    @ [
        st 1 (Event.Op_start { span = 0; node = 2; op = Event.Read; value = None });
        st 20 (Event.Node_join { node = 50 });
        (* time advances past the t=11 deadline *)
        st 25 (Event.Node_join { node = 51 });
        (* already reported: no second finding *)
      ]
  in
  let vs = M.run liveness_cfg evs in
  check Alcotest.(list string) "one liveness finding" [ "liveness" ] (monitors vs)

let test_liveness_finalize_catches_hung_span () =
  let t = M.create liveness_cfg in
  List.iter
    (fun e -> check Alcotest.(list string) "quiet during feed" [] (monitors (M.feed t e)))
    (founding ~n:5
    @ [ st 1 (Event.Op_start { span = 0; node = 2; op = Event.Write; value = None }) ]);
  let vs = M.finalize t ~at:(Time.of_int 30) in
  check Alcotest.(list string) "hung span caught at finalize" [ "liveness" ] (monitors vs)

let test_liveness_clock_starts_at_gst () =
  let cfg = { liveness_cfg with M.liveness_from_gst = true } in
  let span0 = st 1 (Event.Op_start { span = 0; node = 2; op = Event.Read; value = None }) in
  (* Without a GST mark nothing is ever overdue... *)
  let vs = M.run cfg (founding ~n:5 @ [ span0; st 40 (Event.Node_join { node = 50 }) ]) in
  check Alcotest.(list string) "unbounded before stabilization" [] (monitors vs);
  (* ... and with one, the deadline counts from stabilization. *)
  let vs =
    M.run cfg
      (founding ~n:5
      @ [ span0; st 5 Event.Gst_reached; st 40 (Event.Node_join { node = 50 }) ])
  in
  check Alcotest.(list string) "overdue after gst + bound" [ "liveness" ] (monitors vs)

let inversion_cfg = { (M.default ~n:5 ~delta:3) with M.liveness_bound = None }

let read_span ~span ~node ~invoked ~responded ~sn =
  [
    st invoked (Event.Op_start { span; node; op = Event.Read; value = None });
    st responded
      (Event.Op_end
         {
           span;
           node;
           op = Event.Read;
           outcome = Event.Completed;
           value = Some { Event.data = sn; sn };
         });
  ]

let test_inversion_detected () =
  let evs =
    founding ~n:5
    @ read_span ~span:0 ~node:1 ~invoked:1 ~responded:2 ~sn:5
    @ read_span ~span:1 ~node:2 ~invoked:3 ~responded:4 ~sn:3
  in
  let vs = M.run inversion_cfg evs in
  check Alcotest.(list string) "sequential inversion flagged" [ "inversion" ] (monitors vs);
  check_int "flagged at the second read's response" 4 (Time.to_int (List.hd vs).M.at)

let test_inversion_concurrent_reads_allowed () =
  (* The same sn pattern but overlapping intervals: regular registers
     permit this, and so does the monitor. *)
  let evs =
    founding ~n:5
    @ [
        st 1 (Event.Op_start { span = 0; node = 1; op = Event.Read; value = None });
        st 3 (Event.Op_start { span = 1; node = 2; op = Event.Read; value = None });
      ]
    @ [
        st 5
          (Event.Op_end
             {
               span = 0;
               node = 1;
               op = Event.Read;
               outcome = Event.Completed;
               value = Some { Event.data = 9; sn = 9 };
             });
        st 6
          (Event.Op_end
             {
               span = 1;
               node = 2;
               op = Event.Read;
               outcome = Event.Completed;
               value = Some { Event.data = 3; sn = 3 };
             });
      ]
  in
  check Alcotest.(list string) "concurrent reads may invert" []
    (monitors (M.run inversion_cfg evs))

(* ------------------------------------------------------------------ *)
(* Real runs: no false positives under compliant churn; the replay
   bridge reconstructs the in-process regularity verdict exactly. *)

module Es_d = Deployment.Make (Es_register)
module Sync_d = Deployment.Make (Sync_register)

let es_run ~churn_rate () =
  let cfg =
    {
      (Deployment.default_config ~seed:7 ~n:8 ~delay:(Delay.synchronous ~delta:2)
         ~churn_rate)
      with
      Deployment.events_enabled = true;
    }
  in
  let d = Es_d.create cfg (Es_register.default_params ~n:8) in
  Es_d.start_churn d ~until:(Time.of_int 200);
  for i = 1 to 40 do
    Es_d.run_until d (Time.of_int (i * 5));
    match Es_d.random_idle_active d with
    | Some pid -> if i mod 4 = 0 then Es_d.write d pid else Es_d.read d pid
    | None -> ()
  done;
  Es_d.stop_churn d;
  Es_d.run_to_quiescence d ();
  d

let es_monitor_cfg =
  {
    (M.default ~n:8 ~delta:2) with
    M.churn_bound = Some (1.0 /. (3.0 *. 2.0 *. 8.0));
    majority = true;
  }

let test_no_false_positives_compliant_run () =
  (* churn 0.004 is well under the ES bound 1/(3*2*8) ~ 0.0208. *)
  let d = es_run ~churn_rate:0.004 () in
  let evs = Event.events (Es_d.events d) in
  check_bool "trace non-empty" true (evs <> []);
  let vs = M.run es_monitor_cfg evs in
  Alcotest.(check (list string)) "compliant run fires nothing" [] (monitors vs)

let regularity_fingerprint (r : Regularity.report) =
  Format.asprintf "%a" Regularity.pp_report r

(* The deployment's own verdict vs the one recomputed from the
   exported trace alone ([Deployment.regularity] is [Regularity.check]
   on the in-process history). *)
let roundtrip_report ~history ~events =
  let in_process = Regularity.check history in
  let jsonl = Export.jsonl_of_events events in
  match Export.events_of_jsonl jsonl with
  | Error e -> Alcotest.failf "jsonl parse-back failed: %s" e
  | Ok evs ->
    let replayed = Replay.history_of_events ~initial:(History.initial history) evs in
    (in_process, Regularity.check replayed)

let test_roundtrip_regularity_clean () =
  let d = es_run ~churn_rate:0.004 () in
  let in_process, replayed =
    roundtrip_report ~history:(Es_d.history d) ~events:(Event.events (Es_d.events d))
  in
  check_bool "clean run is regular" true (Regularity.is_ok in_process);
  check Alcotest.string "replayed report matches byte for byte"
    (regularity_fingerprint in_process)
    (regularity_fingerprint replayed)

let test_roundtrip_regularity_violation () =
  (* Above-bound churn with the paper-literal adopt-bottom fallback:
     joins activate valueless and reads return bottom — the exact
     failure mode the threshold guards against. The replayed verdict
     must reproduce each violation byte for byte. *)
  let cfg =
    {
      (Deployment.default_config ~seed:3 ~n:10 ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:0.25)
      with
      Deployment.events_enabled = true;
    }
  in
  let params =
    { (Sync_register.default_params ~delta:3) with
      Sync_register.on_empty_inquiry = Sync_register.Adopt_bottom
    }
  in
  let d = Sync_d.create cfg params in
  Sync_d.start_churn d ~until:(Time.of_int 300);
  for i = 1 to 60 do
    Sync_d.run_until d (Time.of_int (i * 5));
    match Sync_d.random_idle_active d with
    | Some pid -> if i mod 5 = 0 then Sync_d.write d pid else Sync_d.read d pid
    | None -> ()
  done;
  Sync_d.stop_churn d;
  Sync_d.run_to_quiescence d ();
  let in_process, replayed =
    roundtrip_report ~history:(Sync_d.history d) ~events:(Event.events (Sync_d.events d))
  in
  check_bool "over-churned adopt-bottom run violates regularity" true
    (in_process.Regularity.violations <> []);
  check Alcotest.string "violations replay byte for byte"
    (regularity_fingerprint in_process)
    (regularity_fingerprint replayed)

(* ------------------------------------------------------------------ *)
(* Lamport stamps and truncated-trace tolerance *)

let test_lamport_stamps_pair_up () =
  let d = es_run ~churn_rate:0.004 () in
  let evs = Event.events (Es_d.events d) in
  let sends = Hashtbl.create 256 in
  List.iter
    (fun { Event.ev; _ } ->
      match ev with
      | Event.Send { src; lamport; _ } ->
        check_bool "send stamps are positive" true (lamport >= 1);
        check_bool "send stamps unique per process" false (Hashtbl.mem sends (src, lamport));
        Hashtbl.replace sends (src, lamport) ()
      | _ -> ())
    evs;
  List.iter
    (fun { Event.ev; _ } ->
      match ev with
      | Event.Deliver { src; lamport; sent; _ } ->
        check_bool "receive applies max+1" true (lamport > sent);
        check_bool "deliver echoes a recorded send stamp" true (Hashtbl.mem sends (src, sent))
      | _ -> ())
    evs;
  let dot = Export.dot_of_events evs in
  let delivers =
    List.length
      (List.filter
         (fun { Event.ev; _ } -> match ev with Event.Deliver _ -> true | _ -> false)
         evs)
  in
  let contains line sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  let dashed =
    List.length
      (List.filter
         (fun line -> contains line "style=dashed")
         (String.split_on_char '\n' dot))
  in
  check_int "one dashed DOT edge per delivery" delivers dashed

let test_truncated_jsonl_lenient () =
  let d = es_run ~churn_rate:0.004 () in
  let evs = Event.events (Es_d.events d) in
  let jsonl = Export.jsonl_of_events evs in
  let truncated = String.sub jsonl 0 (String.length jsonl - 15) in
  (match Export.events_of_jsonl truncated with
  | Ok _ -> Alcotest.fail "strict parser should reject a truncated trace"
  | Error _ -> ());
  match Export.events_of_jsonl_lenient truncated with
  | Error e -> Alcotest.failf "lenient parser rejected a truncated trace: %s" e
  | Ok (evs', warnings) ->
    check_int "one warning for the partial final line" 1 (List.length warnings);
    check_int "all whole lines parsed" (List.length evs - 1) (List.length evs');
    (* Corruption in the middle is not truncation: still an error. *)
    let lines = String.split_on_char '\n' jsonl in
    let corrupted =
      String.concat "\n"
        (List.mapi (fun i l -> if i = List.length lines / 2 then "{broken" else l) lines)
    in
    (match Export.events_of_jsonl_lenient corrupted with
    | Ok _ -> Alcotest.fail "mid-file corruption must still fail"
    | Error _ -> ())

let () =
  Alcotest.run "dds_monitor"
    [
      ( "monitors",
        [
          Alcotest.test_case "churn violation with first tick" `Quick test_churn_violation;
          Alcotest.test_case "compliant churn quiet" `Quick test_churn_compliant_quiet;
          Alcotest.test_case "churn episodes re-arm" `Quick test_churn_episode_rearms;
          Alcotest.test_case "majority violation" `Quick test_majority_violation;
          Alcotest.test_case "liveness violation" `Quick test_liveness_violation;
          Alcotest.test_case "liveness finalize" `Quick
            test_liveness_finalize_catches_hung_span;
          Alcotest.test_case "liveness clock from gst" `Quick
            test_liveness_clock_starts_at_gst;
          Alcotest.test_case "inversion detected" `Quick test_inversion_detected;
          Alcotest.test_case "concurrent inversion allowed" `Quick
            test_inversion_concurrent_reads_allowed;
          Alcotest.test_case "no false positives on compliant run" `Quick
            test_no_false_positives_compliant_run;
        ] );
      ( "replay",
        [
          Alcotest.test_case "clean regularity round-trips" `Quick
            test_roundtrip_regularity_clean;
          Alcotest.test_case "violations round-trip byte for byte" `Quick
            test_roundtrip_regularity_violation;
          Alcotest.test_case "lamport stamps pair up" `Quick test_lamport_stamps_pair_up;
          Alcotest.test_case "truncated jsonl tolerated" `Quick test_truncated_jsonl_lenient;
        ] );
    ]
