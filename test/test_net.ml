(* Tests for the network substrate: pids, delay models, point-to-point
   send, timely broadcast, attachment semantics, fault injection. *)

open Dds_sim
open Dds_net

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time t = Time.of_int t

(* ------------------------------------------------------------------ *)
(* Pid *)

let test_pid_generator () =
  let g = Pid.generator () in
  let a = Pid.fresh g and b = Pid.fresh g and c = Pid.fresh g in
  check_int "arrival order" 0 (Pid.to_int a);
  check_int "arrival order" 1 (Pid.to_int b);
  check_int "arrival order" 2 (Pid.to_int c);
  check_int "issued" 3 (Pid.issued g);
  check_bool "no reuse" false (Pid.equal a b)

let test_pid_collections () =
  let g = Pid.generator () in
  let a = Pid.fresh g and b = Pid.fresh g in
  let set = Pid.Set.of_list [ a; b; a ] in
  check_int "set dedups" 2 (Pid.Set.cardinal set);
  let map = Pid.Map.(empty |> add a "x" |> add b "y") in
  check Alcotest.string "map" "x" (Pid.Map.find a map)

(* ------------------------------------------------------------------ *)
(* Delay *)

let decision ?(now = Time.zero) ?(kind = Delay.Point_to_point) () =
  { Delay.now; src = Pid.of_int 0; dst = Pid.of_int 1; kind }

let test_delay_synchronous_bound () =
  let d = Delay.synchronous ~delta:5 in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 500 do
    let x = Delay.sample d ~rng (decision ()) in
    check_bool "1 <= d <= delta" true (x >= 1 && x <= 5)
  done;
  check (Alcotest.option Alcotest.int) "known bound" (Some 5) (Delay.known_bound d)

let test_delay_es_regimes () =
  let d = Delay.eventually_synchronous ~gst:(time 100) ~delta:3 ~wild:50 in
  let rng = Rng.create ~seed:4 in
  let saw_wild = ref false in
  for _ = 1 to 500 do
    let x = Delay.sample d ~rng (decision ~now:(time 10) ()) in
    check_bool "pre-gst within wild" true (x >= 1 && x <= 50);
    if x > 3 then saw_wild := true
  done;
  check_bool "pre-gst exceeds delta sometimes" true !saw_wild;
  for _ = 1 to 500 do
    let x = Delay.sample d ~rng (decision ~now:(time 100) ()) in
    check_bool "post-gst within delta" true (x >= 1 && x <= 3)
  done;
  check (Alcotest.option Alcotest.int) "no known bound" None (Delay.known_bound d)

let test_delay_split_bounds () =
  let d = Delay.synchronous_split ~broadcast:8 ~p2p:2 in
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 300 do
    let b = Delay.sample d ~rng (decision ~kind:Delay.Broadcast ()) in
    check_bool "broadcast within 8" true (b >= 1 && b <= 8);
    let p = Delay.sample d ~rng (decision ()) in
    check_bool "p2p within 2" true (p >= 1 && p <= 2)
  done;
  check (Alcotest.option Alcotest.int) "known bound is broadcast's" (Some 8)
    (Delay.known_bound d);
  check_bool "p2p > broadcast rejected" true
    (try
       ignore (Delay.synchronous_split ~broadcast:2 ~p2p:5);
       false
     with Invalid_argument _ -> true)

let test_delay_adversarial () =
  let d = Delay.adversarial (fun dec -> if dec.Delay.kind = Delay.Broadcast then 7 else 2) in
  let rng = Rng.create ~seed:5 in
  check_int "scripted broadcast" 7 (Delay.sample d ~rng (decision ~kind:Delay.Broadcast ()));
  check_int "scripted p2p" 2 (Delay.sample d ~rng (decision ()));
  let bad = Delay.adversarial (fun _ -> 0) in
  Alcotest.check_raises "delay < 1 rejected"
    (Invalid_argument "Delay.sample: adversary returned a delay < 1") (fun () ->
      ignore (Delay.sample bad ~rng (decision ())))

let test_delay_invalid () =
  check_bool "delta 0" true
    (try
       ignore (Delay.synchronous ~delta:0);
       false
     with Invalid_argument _ -> true);
  check_bool "wild < delta" true
    (try
       ignore (Delay.eventually_synchronous ~gst:Time.zero ~delta:5 ~wild:2);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Network *)

type world = {
  sched : Scheduler.t;
  net : string Network.t;
  metrics : Metrics.t;
  inbox : (Pid.t * Pid.t * string) list ref;  (* dst, src, payload *)
}

let make_world ?(delta = 4) () =
  let sched = Scheduler.create () in
  let metrics = Metrics.create () in
  let net =
    Network.create ~sched ~rng:(Rng.create ~seed:42) ~delay:(Delay.synchronous ~delta)
      ~metrics ()
  in
  { sched; net; metrics; inbox = ref [] }

let attach w pid =
  Network.attach w.net pid (fun ~src payload -> w.inbox := (pid, src, payload) :: !(w.inbox))

let test_send_delivers_within_delta () =
  let w = make_world ~delta:4 () in
  let a = Pid.of_int 0 and b = Pid.of_int 1 in
  attach w a;
  attach w b;
  Network.send w.net ~src:a ~dst:b "hello";
  check_int "in flight" 1 (Network.in_flight w.net);
  Scheduler.run w.sched ();
  check_bool "delivered by delta" true (Time.to_int (Scheduler.now w.sched) <= 4);
  (match !(w.inbox) with
  | [ (dst, src, payload) ] ->
    check_bool "to b" true (Pid.equal dst b);
    check_bool "from a" true (Pid.equal src a);
    check Alcotest.string "payload" "hello" payload
  | _ -> Alcotest.fail "expected exactly one delivery");
  check_int "metric delivered" 1 (Metrics.get w.metrics "net.delivered");
  check_int "nothing in flight" 0 (Network.in_flight w.net)

let test_send_to_absent_dropped () =
  let w = make_world () in
  let a = Pid.of_int 0 and ghost = Pid.of_int 9 in
  attach w a;
  Network.send w.net ~src:a ~dst:ghost "lost";
  Scheduler.run w.sched ();
  check_int "no delivery" 0 (List.length !(w.inbox));
  check_int "dropped metric" 1 (Metrics.get w.metrics "net.dropped")

let test_departed_before_delivery_drops () =
  let w = make_world ~delta:4 () in
  let a = Pid.of_int 0 and b = Pid.of_int 1 in
  attach w a;
  attach w b;
  Network.send w.net ~src:a ~dst:b "in-flight";
  (* b leaves at time 0, before any delivery can happen (delays >= 1). *)
  Network.detach w.net b;
  Scheduler.run w.sched ();
  check_int "no delivery" 0 (List.length !(w.inbox));
  check_int "dropped at delivery" 1 (Metrics.get w.metrics "net.dropped")

let test_broadcast_present_set () =
  let w = make_world ~delta:3 () in
  let pids = List.map Pid.of_int [ 0; 1; 2; 3 ] in
  List.iter (attach w) pids;
  (match pids with
  | src :: _ -> Network.broadcast w.net ~src "announce"
  | [] -> assert false);
  (* A process entering after the broadcast must not receive it. *)
  let late = Pid.of_int 99 in
  attach w late;
  Scheduler.run w.sched ();
  let receivers = List.map (fun (dst, _, _) -> Pid.to_int dst) !(w.inbox) in
  check_int "all four present received (incl. sender)" 4 (List.length receivers);
  check_bool "late joiner missed it" false (List.mem 99 receivers);
  check_bool "sender delivers its own broadcast" true (List.mem 0 receivers)

let test_broadcast_leaver_misses () =
  let w = make_world ~delta:3 () in
  let a = Pid.of_int 0 and b = Pid.of_int 1 and c = Pid.of_int 2 in
  List.iter (attach w) [ a; b; c ];
  Network.broadcast w.net ~src:a "news";
  Network.detach w.net c;
  Scheduler.run w.sched ();
  let receivers = List.map (fun (dst, _, _) -> Pid.to_int dst) !(w.inbox) in
  check_bool "leaver missed it" false (List.mem 2 receivers);
  check_int "others got it" 2 (List.length receivers)

let test_attach_twice_rejected () =
  let w = make_world () in
  attach w (Pid.of_int 0);
  check_bool "second attach rejected" true
    (try
       attach w (Pid.of_int 0);
       false
     with Invalid_argument _ -> true);
  (* detach then re-attach is fine (fresh pid semantics are enforced by
     Membership, not the network). *)
  Network.detach w.net (Pid.of_int 0);
  attach w (Pid.of_int 0)

let test_fault_injection () =
  let w = make_world () in
  let a = Pid.of_int 0 and b = Pid.of_int 1 in
  attach w a;
  attach w b;
  Network.set_fault w.net (fun dec -> Pid.equal dec.Delay.dst b);
  Network.send w.net ~src:a ~dst:b "eaten";
  Network.send w.net ~src:b ~dst:a "passes";
  Scheduler.run w.sched ();
  check_int "one delivery" 1 (List.length !(w.inbox));
  check_int "one faulted" 1 (Metrics.get w.metrics "net.faulted");
  Network.clear_fault w.net;
  Network.send w.net ~src:a ~dst:b "now passes";
  Scheduler.run w.sched ();
  check_int "fault cleared" 2 (List.length !(w.inbox))

(* ------------------------------------------------------------------ *)
(* Flooding broadcast *)

let make_flood_world ?(delta = 3) ~depth () =
  let sched = Scheduler.create () in
  let metrics = Metrics.create () in
  let net =
    Network.create ~sched ~rng:(Rng.create ~seed:77) ~delay:(Delay.synchronous ~delta)
      ~metrics
      ~broadcast_mode:(Network.Flooding { relay_depth = depth })
      ()
  in
  { sched; net; metrics; inbox = ref [] }

let test_flood_delivers_once_to_all () =
  let w = make_flood_world ~depth:2 () in
  let pids = List.map Pid.of_int [ 0; 1; 2; 3; 4 ] in
  List.iter (attach w) pids;
  Network.broadcast w.net ~src:(Pid.of_int 0) "flooded";
  Scheduler.run w.sched ();
  check_int "everyone exactly once" 5 (List.length !(w.inbox));
  let receivers = List.sort_uniq Int.compare (List.map (fun (d, _, _) -> Pid.to_int d) !(w.inbox)) in
  Alcotest.(check (list int)) "all present" [ 0; 1; 2; 3; 4 ] receivers;
  (* The src the handler sees is the broadcast origin, even via relay. *)
  List.iter (fun (_, src, _) -> check_int "origin preserved" 0 (Pid.to_int src)) !(w.inbox);
  check_bool "relays happened" true (Metrics.get w.metrics "net.relayed" > 0);
  check_bool "duplicates suppressed" true (Metrics.get w.metrics "net.duplicate" > 0)

let test_flood_delivery_within_depth_bound () =
  let delta = 3 and depth = 2 in
  let w = make_flood_world ~delta ~depth () in
  List.iter (fun i -> attach w (Pid.of_int i)) [ 0; 1; 2; 3; 4; 5 ];
  Network.broadcast w.net ~src:(Pid.of_int 0) "bounded";
  let last = ref 0 in
  (* Track latest first-delivery instant via a monitor read after run. *)
  Scheduler.run w.sched ();
  ignore last;
  check_bool "all delivered by depth*delta" true
    (Time.to_int (Scheduler.now w.sched) >= 1);
  (* All 6 deliveries happened; the clock can have advanced beyond the
     bound due to late duplicate arrivals, so check the count only and
     rely on the property test for timing. *)
  check_int "six deliveries" 6 (List.length !(w.inbox))

let test_flood_routes_around_link_faults () =
  (* Drop every direct link from the origin except origin->1: with the
     primitive the others never hear it; flooding (depth 2) relays
     through p1. *)
  let origin = Pid.of_int 0 and relay = Pid.of_int 1 in
  let fault (dec : Delay.decision) =
    Pid.equal dec.Delay.src origin
    && (not (Pid.equal dec.Delay.dst relay))
    && not (Pid.equal dec.Delay.dst origin)
  in
  let run mode =
    let sched = Scheduler.create () in
    let net =
      Network.create ~sched ~rng:(Rng.create ~seed:5) ~delay:(Delay.synchronous ~delta:2)
        ~broadcast_mode:mode ()
    in
    let got = ref [] in
    List.iter
      (fun i ->
        Network.attach net (Pid.of_int i) (fun ~src:_ _ -> got := i :: !got))
      [ 0; 1; 2; 3 ];
    Network.set_fault net fault;
    Network.broadcast net ~src:origin "partitioned";
    Scheduler.run sched ();
    List.sort_uniq Int.compare !got
  in
  Alcotest.(check (list int)) "primitive reaches only the good link" [ 0; 1 ]
    (run Network.Primitive);
  Alcotest.(check (list int)) "flooding routes around" [ 0; 1; 2; 3 ]
    (run (Network.Flooding { relay_depth = 2 }))

let test_flood_dedup_absorbs_injected_duplicates () =
  (* A nemesis duplicating every transmission must not break flooding's
     exactly-once delivery: the per-broadcast dedup that already
     suppresses relay echoes absorbs injected copies too. *)
  let w = make_flood_world ~depth:2 () in
  let pids = List.map Pid.of_int [ 0; 1; 2; 3; 4 ] in
  List.iter (attach w) pids;
  Network.set_fault_plan w.net (fun _dec ~msg_kind:_ ->
      Network.Duplicate { copies = 2 });
  Network.broadcast w.net ~src:(Pid.of_int 0) "dup-flood";
  Scheduler.run w.sched ();
  check_int "everyone exactly once despite duplicates" 5 (List.length !(w.inbox));
  check_bool "injection happened" true (Network.faults_injected w.net > 0);
  check_bool "duplicates suppressed" true (Metrics.get w.metrics "net.duplicate" > 0);
  (* Every injected copy was announced: transmissions exceed what the
     same flood costs without the nemesis. *)
  check_bool "extra wire copies" true
    (Metrics.get w.metrics "net.transmit" > Metrics.get w.metrics "net.injected")

let test_flood_depth_one_is_one_hop () =
  (* relay_depth 1: origin's sends only; no relaying at receivers. *)
  let w = make_flood_world ~depth:1 () in
  List.iter (fun i -> attach w (Pid.of_int i)) [ 0; 1; 2 ];
  Network.broadcast w.net ~src:(Pid.of_int 0) "one-hop";
  Scheduler.run w.sched ();
  check_int "three deliveries" 3 (List.length !(w.inbox));
  check_int "no relays" 0 (Metrics.get w.metrics "net.relayed")

let prop_flood_delivery_bound =
  QCheck2.Test.make ~name:"flooding delivers to all present within depth*delta" ~count:60
    QCheck2.Gen.(triple (int_range 1 5) (int_range 1 3) (int_range 2 15))
    (fun (delta, depth, n) ->
      let sched = Scheduler.create () in
      let net =
        Network.create ~sched
          ~rng:(Rng.create ~seed:(delta + (7 * depth) + (31 * n)))
          ~delay:(Delay.synchronous ~delta)
          ~broadcast_mode:(Network.Flooding { relay_depth = depth })
          ()
      in
      let deliveries = ref 0 and latest = ref 0 in
      for i = 0 to n - 1 do
        Network.attach net (Pid.of_int i) (fun ~src:_ _ ->
            incr deliveries;
            latest := Stdlib.max !latest (Time.to_int (Scheduler.now sched)))
      done;
      Network.broadcast net ~src:(Pid.of_int 0) ();
      Scheduler.run sched ();
      !deliveries = n && !latest <= depth * delta)

let prop_sync_delivery_bound =
  QCheck2.Test.make ~name:"synchronous broadcast delivers everything within delta" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) (int_range 2 30))
    (fun (delta, n) ->
      let sched = Scheduler.create () in
      let net =
        Network.create ~sched ~rng:(Rng.create ~seed:(delta + (1000 * n)))
          ~delay:(Delay.synchronous ~delta) ()
      in
      let deliveries = ref 0 in
      let last = ref 0 in
      for i = 0 to n - 1 do
        Network.attach net (Pid.of_int i) (fun ~src:_ _ ->
            incr deliveries;
            last := Stdlib.max !last (Time.to_int (Scheduler.now sched)))
      done;
      Network.broadcast net ~src:(Pid.of_int 0) ();
      Scheduler.run sched ();
      !deliveries = n && !last <= delta)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_net"
    [
      ( "pid",
        [
          Alcotest.test_case "generator" `Quick test_pid_generator;
          Alcotest.test_case "collections" `Quick test_pid_collections;
        ] );
      ( "delay",
        [
          Alcotest.test_case "synchronous bound" `Quick test_delay_synchronous_bound;
          Alcotest.test_case "eventually synchronous regimes" `Quick test_delay_es_regimes;
          Alcotest.test_case "split bounds" `Quick test_delay_split_bounds;
          Alcotest.test_case "adversarial" `Quick test_delay_adversarial;
          Alcotest.test_case "invalid" `Quick test_delay_invalid;
        ] );
      ( "network",
        [
          Alcotest.test_case "send within delta" `Quick test_send_delivers_within_delta;
          Alcotest.test_case "send to absent dropped" `Quick test_send_to_absent_dropped;
          Alcotest.test_case "departed before delivery" `Quick
            test_departed_before_delivery_drops;
          Alcotest.test_case "broadcast present set" `Quick test_broadcast_present_set;
          Alcotest.test_case "broadcast leaver misses" `Quick test_broadcast_leaver_misses;
          Alcotest.test_case "attach twice rejected" `Quick test_attach_twice_rejected;
          Alcotest.test_case "fault injection" `Quick test_fault_injection;
        ] );
      ( "flooding",
        [
          Alcotest.test_case "delivers once to all" `Quick test_flood_delivers_once_to_all;
          Alcotest.test_case "delivery count" `Quick test_flood_delivery_within_depth_bound;
          Alcotest.test_case "routes around link faults" `Quick
            test_flood_routes_around_link_faults;
          Alcotest.test_case "dedup absorbs injected duplicates" `Quick
            test_flood_dedup_absorbs_injected_duplicates;
          Alcotest.test_case "depth one is one hop" `Quick test_flood_depth_one_is_one_hop;
        ] );
      qsuite "network-props" [ prop_sync_delivery_bound; prop_flood_delivery_bound ];
    ]
