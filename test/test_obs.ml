(* End-to-end observability: a deterministic run's JSONL trace is
   byte-stable, parses back losslessly, renders to valid Chrome
   trace_event JSON, and its spans/counters agree with the history and
   metrics of the run that produced it. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core

module D = Deployment.Make (Es_register)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A small churn-and-operations run, identical on every call. *)
let run_small ~events_enabled () =
  let cfg =
    {
      (Deployment.default_config ~seed:11 ~n:5 ~delay:(Delay.synchronous ~delta:2)
         ~churn_rate:0.02)
      with
      Deployment.events_enabled;
    }
  in
  let d = D.create cfg (Es_register.default_params ~n:5) in
  D.start_churn d ~until:(Time.of_int 60);
  for i = 1 to 12 do
    D.run_until d (Time.of_int (i * 5));
    match D.random_idle_active d with
    | Some pid -> if i mod 3 = 0 then D.write d pid else D.read d pid
    | None -> ()
  done;
  D.stop_churn d;
  D.run_to_quiescence d ();
  d

let jsonl_of d = Export.jsonl_of_events (Event.events (D.events d))

let test_jsonl_byte_stable () =
  let s1 = jsonl_of (run_small ~events_enabled:true ()) in
  let s2 = jsonl_of (run_small ~events_enabled:true ()) in
  check_bool "trace is non-empty" true (String.length s1 > 0);
  check Alcotest.string "same seed, same bytes" s1 s2;
  (* Golden anchor: the record opens with the founding members'
     membership events, in pid order, at t=0. *)
  let first_line = List.hd (String.split_on_char '\n' s1) in
  check Alcotest.string "golden first line" {|{"t":0,"e":"node_join","node":0}|} first_line

let test_jsonl_roundtrip () =
  let d = run_small ~events_enabled:true () in
  let evs = Event.events (D.events d) in
  match Export.events_of_jsonl (Export.jsonl_of_events evs) with
  | Error e -> Alcotest.failf "parse-back failed: %s" e
  | Ok evs' -> check_bool "lossless" true (evs = evs')

let test_spans_match_history () =
  let d = run_small ~events_enabled:true () in
  let evs = Event.events (D.events d) in
  let spans, orphans = Export.spans_of_events evs in
  Alcotest.(check (list int)) "no orphan spans after quiescence" [] orphans;
  check_int "unclosed agrees" 0 (List.length (Event.unclosed_spans evs));
  let completed op =
    List.length
      (List.filter
         (fun (s : Export.span) -> s.Export.op = op && s.Export.outcome = Event.Completed)
         spans)
  in
  let h = D.history d in
  check_int "one span per completed join" (List.length (History.completed_joins h))
    (completed Event.Join);
  check_int "one span per completed read" (List.length (History.completed_reads h))
    (completed Event.Read);
  check_int "one span per completed write" (List.length (History.completed_writes h))
    (completed Event.Write);
  (* Aborted history ops map to Aborted spans, closed by the
     deployment when the process was churned out. *)
  let aborted_spans =
    List.length (List.filter (fun (s : Export.span) -> s.Export.outcome = Event.Aborted) spans)
  in
  check_int "aborted ops closed as aborted spans" (List.length (History.aborted h))
    aborted_spans

let test_send_events_match_counter () =
  let d = run_small ~events_enabled:true () in
  let sends =
    List.length
      (List.filter
         (fun { Event.ev; _ } -> match ev with Event.Send _ -> true | _ -> false)
         (Event.events (D.events d)))
  in
  check_int "Send events == net.transmit" (Metrics.get (D.metrics d) "net.transmit") sends;
  let resolved =
    List.length
      (List.filter
         (fun { Event.ev; _ } ->
           match ev with Event.Deliver _ | Event.Drop _ -> true | _ -> false)
         (Event.events (D.events d)))
  in
  check_int "every Send resolved by Deliver or Drop" sends resolved

let test_chrome_parses_back () =
  let d = run_small ~events_enabled:true () in
  let evs = Event.events (D.events d) in
  let rendered = Json.to_string (Export.chrome_of_events evs) in
  match Json.parse rendered with
  | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
  | Ok json -> (
    match Json.member "traceEvents" json with
    | Some (Json.List items) ->
      let spans, _ = Export.spans_of_events evs in
      let xs =
        List.filter
          (fun item ->
            match Json.member "ph" item with
            | Some (Json.String "X") -> true
            | _ -> false)
          items
      in
      check_int "one X event per completed span" (List.length spans) (List.length xs);
      List.iter
        (fun item ->
          check_bool "every entry has a ph" true (Json.member "ph" item <> None);
          check_bool "every entry has a pid" true
            (match Json.member "pid" item with Some (Json.Int _) -> true | _ -> false))
        items
    | Some _ | None -> Alcotest.fail "missing traceEvents array")

let test_chrome_readback_spans_agree () =
  let d = run_small ~events_enabled:true () in
  let evs = Event.events (D.events d) in
  let spans, _ = Export.spans_of_events evs in
  match Json.parse (Json.to_string (Export.chrome_of_events evs)) with
  | Error e -> Alcotest.failf "chrome render invalid: %s" e
  | Ok json -> (
    match Export.events_of_chrome json with
    | Error e -> Alcotest.failf "chrome readback failed: %s" e
    | Ok evs' ->
      let spans', orphans' = Export.spans_of_events evs' in
      Alcotest.(check (list int)) "no orphans on readback" [] orphans';
      check_bool "spans survive the chrome round trip" true (spans = spans');
      (* Churn and GST instants reconstruct too. *)
      let count p l = List.length (List.filter p l) in
      let joins l =
        count (fun { Event.ev; _ } -> match ev with Event.Node_join _ -> true | _ -> false) l
      in
      let leaves l =
        count (fun { Event.ev; _ } -> match ev with Event.Node_leave _ -> true | _ -> false) l
      in
      check_int "joins survive" (joins evs) (joins evs');
      check_int "leaves survive" (leaves evs) (leaves evs'))

let test_disabled_records_nothing () =
  let d = run_small ~events_enabled:false () in
  check_int "no events recorded" 0 (Event.length (D.events d));
  check_bool "sink reports disabled" false (Event.enabled (D.events d));
  (* The run itself is unaffected: history and metrics still fill. *)
  check_bool "ops still recorded" true (List.length (History.completed_reads (D.history d)) > 0)

let test_metrics_snapshot_json () =
  let d = run_small ~events_enabled:true () in
  let snap = D.metrics_snapshot d in
  let rendered = Json.to_string (Export.metrics_to_json snap) in
  match Json.parse rendered with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok json ->
    check_bool "has counters" true (Json.member "counters" json <> None);
    check_bool "has gauges" true (Json.member "gauges" json <> None);
    (match Json.member "histograms" json with
    | Some (Json.Obj fields) ->
      check_bool "latency histograms exported" true (List.mem_assoc "latency.read" fields)
    | Some _ | None -> Alcotest.fail "missing histograms")

let () =
  Alcotest.run "dds_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "jsonl byte-stable" `Quick test_jsonl_byte_stable;
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "spans match history" `Quick test_spans_match_history;
          Alcotest.test_case "send events match counter" `Quick
            test_send_events_match_counter;
          Alcotest.test_case "chrome parses back" `Quick test_chrome_parses_back;
          Alcotest.test_case "chrome readback spans agree" `Quick
            test_chrome_readback_spans_agree;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "metrics snapshot json" `Quick test_metrics_snapshot_json;
        ] );
    ]
