(* Tests for the engine profiler: observation-only (identical results
   and rendered tables with a recorder attached), per-domain span
   well-nestedness, GC telemetry plausibility, Chrome export
   round-trip, the drop cap, the Probe hook, and worker-count
   independence of what gets recorded (as a qcheck property). *)

open Dds_engine
open Dds_workload
module Profile = Dds_profile.Profile

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let render_lemma2 ~pool ~n ~ratios ~seed =
  Format.asprintf "%a" Report.pp
    (Tables.lemma2 ~n ~delta:2 (Sweep.lemma2 ?pool ~n ~delta:2 ~ratios ~horizon:120 ~seed ()))

(* ------------------------------------------------------------------ *)
(* Observation only: attaching a recorder changes nothing. *)

let test_off_identical () =
  let n = 12 and ratios = [ 0.5; 1.0 ] and seed = 3 in
  let plain = Pool.with_pool ~jobs:2 (fun p -> render_lemma2 ~pool:(Some p) ~n ~ratios ~seed) in
  let profile = Profile.create ~workers:2 () in
  let profiled =
    Pool.with_pool ~jobs:2 ~profile (fun p -> render_lemma2 ~pool:(Some p) ~n ~ratios ~seed)
  in
  check_bool "table byte-identical with recorder attached" true (String.equal plain profiled);
  check_bool "and the recorder actually saw the jobs" true
    ((Profile.summary profile).Profile.s_jobs > 0)

(* ------------------------------------------------------------------ *)
(* A profiled batch: span structure, GC telemetry, summary sanity. *)

let profiled_batch ~jobs ~njobs =
  let profile = Profile.create ~workers:jobs () in
  let results =
    Pool.with_pool ~jobs ~profile (fun p ->
        Pool.map p
          ~key:(fun i -> Printf.sprintf "job-%02d" i)
          ~f:(fun i ->
            (* Allocate visibly so the minor-words telemetry has
               something to see. *)
            let l = List.init 2000 (fun k -> k * i) in
            List.fold_left ( + ) 0 l)
          (List.init njobs Fun.id))
  in
  (profile, results)

let test_job_spans_and_gc () =
  let njobs = 12 in
  let profile, results = profiled_batch ~jobs:3 ~njobs in
  check_int "results in canonical order" njobs (List.length results);
  let spans = Profile.spans profile in
  let jobs_spans = List.filter (fun s -> s.Profile.sp_kind = Profile.Job) spans in
  check_int "one Job span per job" njobs (List.length jobs_spans);
  List.iter
    (fun s ->
      check_bool "span has duration >= 0" true (s.Profile.sp_t1 >= s.Profile.sp_t0);
      check_bool "minor words non-negative" true (s.Profile.sp_minor >= 0.0))
    jobs_spans;
  check_bool "batch allocated minor words" true
    (List.exists (fun s -> s.Profile.sp_minor > 0.0) jobs_spans);
  let labels =
    List.sort compare (List.map (fun s -> s.Profile.sp_label) jobs_spans)
  in
  let expected = List.sort compare (List.init njobs (Printf.sprintf "job-%02d")) in
  check (Alcotest.list Alcotest.string) "every submitted key ran exactly once" expected labels;
  let s = Profile.summary profile in
  check_int "summary job count" njobs s.Profile.s_jobs;
  check_int "summary worker count" 3 (List.length s.Profile.s_workers);
  check_bool "busy fraction in [0,1]" true
    (s.Profile.s_busy_fraction >= 0.0 && s.Profile.s_busy_fraction <= 1.0);
  check_bool "dominant cost named" true (String.length s.Profile.s_dominant > 0)

(* Per domain, spans must be well-nested: any two are disjoint or one
   contains the other (phases sit inside their job; job, steal, idle
   and merge spans never overlap on one worker). *)
let test_spans_well_nested () =
  let profile, _ = profiled_batch ~jobs:4 ~njobs:24 in
  let spans = Profile.spans profile in
  check_bool "recorded something" true (spans <> []);
  let by_worker = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_worker s.Profile.sp_worker) in
      Hashtbl.replace by_worker s.Profile.sp_worker (s :: l))
    spans;
  Hashtbl.iter
    (fun worker ss ->
      List.iteri
        (fun i a ->
          List.iteri
            (fun k b ->
              if i < k then begin
                let disjoint =
                  a.Profile.sp_t1 <= b.Profile.sp_t0 || b.Profile.sp_t1 <= a.Profile.sp_t0
                in
                let nested =
                  (a.Profile.sp_t0 <= b.Profile.sp_t0 && b.Profile.sp_t1 <= a.Profile.sp_t1)
                  || (b.Profile.sp_t0 <= a.Profile.sp_t0 && a.Profile.sp_t1 <= b.Profile.sp_t1)
                in
                if not (disjoint || nested) then
                  Alcotest.failf
                    "worker %d: %s [%f,%f] overlaps %s [%f,%f] without nesting" worker
                    (Profile.kind_to_string a.Profile.sp_kind)
                    a.Profile.sp_t0 a.Profile.sp_t1
                    (Profile.kind_to_string b.Profile.sp_kind)
                    b.Profile.sp_t0 b.Profile.sp_t1
              end)
            ss)
        ss)
    by_worker

(* ------------------------------------------------------------------ *)
(* Probe hook: phases land in the bound worker's lane; no handler (or
   no binding) means straight pass-through. *)

let test_probe_phases () =
  check_int "span is transparent" 41 (Dds_sim.Probe.span "x" (fun () -> 41));
  let profile = Profile.create ~workers:1 () in
  let saved = Profile.get_current () in
  Profile.set_current profile ~worker:0;
  let r = Dds_sim.Probe.span "outer" (fun () -> Dds_sim.Probe.span "inner" (fun () -> 7)) in
  Profile.restore saved;
  check_int "phases are transparent too" 7 r;
  let phases =
    List.filter (fun s -> s.Profile.sp_kind = Profile.Phase) (Profile.spans profile)
  in
  check_int "both phases recorded" 2 (List.length phases);
  (* Closed innermost-first. *)
  check (Alcotest.list Alcotest.string) "labels" [ "inner"; "outer" ]
    (List.map (fun s -> s.Profile.sp_label) phases);
  let sum = Profile.summary profile in
  check_int "phase table sees both" 2 (List.length sum.Profile.s_phases)

(* Deployment construction emits deploy/rng phases when a recorder is
   bound — the "known suspects" phase timers end to end. *)
let test_deploy_phases_via_engine () =
  let profile = Profile.create ~workers:2 () in
  ignore
    (Pool.with_pool ~jobs:2 ~profile (fun p ->
         render_lemma2 ~pool:(Some p) ~n:12 ~ratios:[ 0.5; 1.0 ] ~seed:5));
  let names = List.map (fun (name, _, _) -> name) (Profile.summary profile).Profile.s_phases in
  check_bool "deploy phase timed" true (List.mem "deploy" names);
  check_bool "rng phase timed" true (List.mem "rng" names)

(* ------------------------------------------------------------------ *)
(* Chrome export parses back; one lane per domain; summary attached. *)

let test_chrome_round_trip () =
  let workers = 3 in
  let profile, _ = profiled_batch ~jobs:workers ~njobs:9 in
  let text = Dds_sim.Json.to_string (Profile.to_json profile) in
  match Dds_sim.Json.parse text with
  | Error e -> Alcotest.failf "export did not parse back: %s" e
  | Ok j ->
    let events =
      match Dds_sim.Json.member "traceEvents" j with
      | Some (Dds_sim.Json.List evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array"
    in
    check_bool "has events" true (events <> []);
    let lanes =
      List.filter_map
        (fun ev ->
          match
            ( Option.bind (Dds_sim.Json.member "name" ev) Dds_sim.Json.to_string_opt,
              Option.bind (Dds_sim.Json.member "tid" ev) Dds_sim.Json.to_int_opt )
          with
          | Some "thread_name", Some tid -> Some tid
          | _ -> None)
        events
      |> List.sort_uniq compare
    in
    check (Alcotest.list Alcotest.int) "one named lane per domain"
      (List.init workers Fun.id) lanes;
    List.iter
      (fun ev ->
        match Option.bind (Dds_sim.Json.member "ph" ev) Dds_sim.Json.to_string_opt with
        | Some "X" ->
          let dur =
            Option.bind (Dds_sim.Json.member "dur" ev) Dds_sim.Json.to_int_opt
          in
          check_bool "X events carry a duration" true (Option.is_some dur)
        | _ -> ())
      events;
    check_bool "summary attached" true (Dds_sim.Json.member "summary" j <> None)

(* ------------------------------------------------------------------ *)
(* The drop cap: over-full buffers count drops instead of growing. *)

let test_drop_cap () =
  let profile = Profile.create ~max_spans:8 ~workers:1 () in
  for i = 0 to 99 do
    let t = float_of_int i in
    Profile.record profile ~worker:0 ~kind:Profile.Job ~label:"x" ~t0:t ~t1:(t +. 0.5)
  done;
  check_int "buffer capped" 8 (List.length (Profile.spans profile));
  check_int "overflow counted as dropped" 92 (Profile.summary profile).Profile.s_dropped

(* ------------------------------------------------------------------ *)
(* Worker-count independence: the recorded work (job labels) is a
   function of the batch, not of how many domains ran it. *)

let prop_jobs_invariant =
  QCheck.Test.make ~count:8 ~name:"recorded job labels identical for jobs in {1,2,4}"
    QCheck.(pair (int_range 4 20) small_nat)
    (fun (njobs, salt) ->
      let labels jobs =
        let profile = Profile.create ~workers:jobs () in
        ignore
          (Pool.with_pool ~jobs ~profile (fun p ->
               Pool.map p
                 ~key:(fun i -> Printf.sprintf "cell-%d-%d" salt i)
                 ~f:(fun i -> i * i)
                 (List.init njobs Fun.id)));
        List.filter_map
          (fun s ->
            if s.Profile.sp_kind = Profile.Job then Some s.Profile.sp_label else None)
          (Profile.spans profile)
        |> List.sort compare
      in
      let reference = labels 1 in
      List.for_all (fun j -> labels j = reference) [ 2; 4 ])

let () =
  Alcotest.run "dds-profile"
    [
      ( "observation-only",
        [
          Alcotest.test_case "tables identical with recorder" `Quick test_off_identical;
        ] );
      ( "spans",
        [
          Alcotest.test_case "job spans + GC telemetry" `Quick test_job_spans_and_gc;
          Alcotest.test_case "well-nested per domain" `Quick test_spans_well_nested;
          Alcotest.test_case "drop cap" `Quick test_drop_cap;
        ] );
      ( "probe",
        [
          Alcotest.test_case "phase hook" `Quick test_probe_phases;
          Alcotest.test_case "deploy/rng phases end to end" `Quick
            test_deploy_phases_via_engine;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome round trip" `Quick test_chrome_round_trip ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest ~long:false prop_jobs_invariant ] );
    ]
