(* Tests for majority arithmetic and timed quorums (the Section 7
   future-work extension). *)

open Dds_sim
open Dds_net
open Dds_churn
open Dds_quorum

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int
let pid = Pid.of_int

(* ------------------------------------------------------------------ *)
(* Majority *)

let test_threshold () =
  check_int "n=1" 1 (Majority.threshold ~n:1);
  check_int "n=2" 2 (Majority.threshold ~n:2);
  check_int "n=9" 5 (Majority.threshold ~n:9);
  check_int "n=10" 6 (Majority.threshold ~n:10);
  check_bool "n=0 rejected" true
    (try
       ignore (Majority.threshold ~n:0);
       false
     with Invalid_argument _ -> true)

let test_is_quorum () =
  check_bool "6 of 10" true (Majority.is_quorum ~n:10 ~size:6);
  check_bool "5 of 10" false (Majority.is_quorum ~n:10 ~size:5);
  check_int "absent tolerance n=10" 4 (Majority.max_simultaneously_absent ~n:10);
  check_int "absent tolerance n=9" 4 (Majority.max_simultaneously_absent ~n:9)

let test_guaranteed_intersection () =
  check_int "n=10: two 6-sets share >= 2" 2 (Majority.guaranteed_intersection ~n:10);
  check_int "n=9: two 5-sets share >= 1" 1 (Majority.guaranteed_intersection ~n:9);
  (* Always at least one: the property the ES proofs lean on. *)
  for n = 1 to 50 do
    check_bool "positive" true (Majority.guaranteed_intersection ~n >= 1)
  done

let test_set_intersection () =
  let s l = Pid.Set.of_list (List.map pid l) in
  check_bool "overlap" true (Majority.sets_intersect (s [ 1; 2; 3 ]) (s [ 3; 4 ]));
  check_bool "disjoint" false (Majority.sets_intersect (s [ 1; 2 ]) (s [ 3; 4 ]));
  check_bool "pairwise ok" true
    (Majority.all_pairwise_intersect [ s [ 1; 2 ]; s [ 2; 3 ]; s [ 1; 3 ] ]);
  check_bool "pairwise fails" false
    (Majority.all_pairwise_intersect [ s [ 1; 2 ]; s [ 2; 3 ]; s [ 4 ] ])

(* Property: any two majorities of the same ground set intersect. *)
let prop_majorities_intersect =
  QCheck2.Test.make ~name:"two random majorities always intersect" ~count:200
    QCheck2.Gen.(pair (int_range 2 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let sample () =
        let arr = Array.init n pid in
        Rng.shuffle_in_place rng arr;
        let q = Majority.threshold ~n in
        Pid.Set.of_list (Array.to_list (Array.sub arr 0 q))
      in
      Majority.sets_intersect (sample ()) (sample ()))

(* ------------------------------------------------------------------ *)
(* Timed quorums *)

let membership_with ~active =
  let m = Membership.create () in
  List.iter
    (fun i ->
      Membership.add m (pid i) ~now:Time.zero;
      Membership.set_active m (pid i) ~now:Time.zero)
    active;
  m

let test_acquire_samples_actives () =
  let m = membership_with ~active:[ 0; 1; 2; 3; 4 ] in
  let rng = Rng.create ~seed:5 in
  match Timed_quorum.acquire ~membership:m ~rng ~now:(time 3) ~size:3 ~lifetime:10 with
  | Some q ->
    check_int "size" 3 (Pid.Set.cardinal q.Timed_quorum.members);
    check_int "acquired" 3 (Time.to_int q.Timed_quorum.acquired);
    Pid.Set.iter
      (fun p -> check_bool "member is active" true (Membership.is_active m p))
      q.Timed_quorum.members
  | None -> Alcotest.fail "expected a quorum"

let test_acquire_insufficient () =
  let m = membership_with ~active:[ 0; 1 ] in
  let rng = Rng.create ~seed:5 in
  check_bool "not enough actives" true
    (Timed_quorum.acquire ~membership:m ~rng ~now:Time.zero ~size:3 ~lifetime:5 = None)

let test_expiry_and_survivors () =
  let m = membership_with ~active:[ 0; 1; 2; 3 ] in
  let rng = Rng.create ~seed:1 in
  let q =
    Option.get (Timed_quorum.acquire ~membership:m ~rng ~now:(time 0) ~size:3 ~lifetime:5)
  in
  check_bool "fresh" false (Timed_quorum.expired q ~now:(time 5));
  check_bool "expired" true (Timed_quorum.expired q ~now:(time 6));
  (* Remove one member: survivors drop accordingly. *)
  let victim = Pid.Set.min_elt q.Timed_quorum.members in
  Membership.remove m victim ~now:(time 2);
  check_int "survivors" 2 (Pid.Set.cardinal (Timed_quorum.survivors q m));
  check_bool "holds 2-threshold" true (Timed_quorum.holds q m ~threshold:2);
  check_bool "fails 3-threshold" false (Timed_quorum.holds q m ~threshold:3)

let test_intersecting_survivors () =
  let m = membership_with ~active:[ 0; 1; 2 ] in
  let rng = Rng.create ~seed:9 in
  (* Size 2 of 3: any two quorums share someone. *)
  let qa = Option.get (Timed_quorum.acquire ~membership:m ~rng ~now:Time.zero ~size:2 ~lifetime:5) in
  let qb = Option.get (Timed_quorum.acquire ~membership:m ~rng ~now:Time.zero ~size:2 ~lifetime:5) in
  check_bool "intersect while everyone present" true
    (not (Pid.Set.is_empty (Timed_quorum.intersecting_survivors qa qb m)))

let test_decay_law () =
  check (Alcotest.float 1e-9) "no churn" 10.0
    (Timed_quorum.expected_survivors ~size:10 ~c:0.0 ~elapsed:100);
  check (Alcotest.float 1e-9) "halving-ish" (10.0 *. (0.9 ** 5.0))
    (Timed_quorum.expected_survivors ~size:10 ~c:0.1 ~elapsed:5);
  (* recommended_size grows with churn and is capped at n. *)
  let r0 = Timed_quorum.recommended_size ~n:20 ~c:0.0 ~lifetime:10 in
  let r1 = Timed_quorum.recommended_size ~n:20 ~c:0.02 ~lifetime:10 in
  let r2 = Timed_quorum.recommended_size ~n:20 ~c:0.2 ~lifetime:10 in
  check_int "no churn -> plain majority" 11 r0;
  check_bool "grows" true (r1 >= r0);
  check_int "capped at n" 20 r2

let test_acquire_invalid () =
  let m = membership_with ~active:[ 0; 1; 2 ] in
  let rng = Rng.create ~seed:1 in
  check_bool "size 0" true
    (try
       ignore (Timed_quorum.acquire ~membership:m ~rng ~now:Time.zero ~size:0 ~lifetime:1);
       false
     with Invalid_argument _ -> true);
  check_bool "negative lifetime" true
    (try
       ignore
         (Timed_quorum.acquire ~membership:m ~rng ~now:Time.zero ~size:1 ~lifetime:(-1));
       false
     with Invalid_argument _ -> true)

(* Property: measured survivors of a timed quorum under uniform churn
   stay near the analytic law (within generous tolerance). *)
let prop_decay_matches_simulation =
  QCheck2.Test.make ~name:"survivor decay tracks size*(1-c)^t" ~count:20
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 8))
    (fun (seed, c_pct) ->
      let c = float_of_int c_pct /. 100.0 in
      let n = 40 and lifetime = 15 and trials = 60 in
      let size = (n / 2) + 1 in
      let total = ref 0 in
      for trial = 1 to trials do
        let rng = Rng.create ~seed:(seed + (trial * 31)) in
        let sched = Scheduler.create () in
        let m = Membership.create () in
        let gen = Pid.generator () in
        for _ = 1 to n do
          let p = Pid.fresh gen in
          Membership.add m p ~now:Time.zero;
          Membership.set_active m p ~now:Time.zero
        done;
        let spawn () =
          let p = Pid.fresh gen in
          Membership.add m p ~now:(Scheduler.now sched);
          Membership.set_active m p ~now:(Scheduler.now sched)
        in
        let retire p = Membership.remove m p ~now:(Scheduler.now sched) in
        let churn =
          Churn.create ~sched ~rng:(Rng.split rng) ~membership:m ~n ~rate:c ~spawn ~retire
            ()
        in
        Churn.start churn ~until:(time lifetime);
        let q =
          Option.get
            (Timed_quorum.acquire ~membership:m ~rng ~now:Time.zero ~size ~lifetime)
        in
        Scheduler.run_until sched (time lifetime);
        total := !total + Pid.Set.cardinal (Timed_quorum.survivors q m)
      done;
      let measured = float_of_int !total /. float_of_int trials in
      let expected = Timed_quorum.expected_survivors ~size ~c ~elapsed:lifetime in
      Float.abs (measured -. expected) < 0.25 *. float_of_int size +. 1.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_quorum"
    [
      ( "majority",
        [
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "is_quorum" `Quick test_is_quorum;
          Alcotest.test_case "guaranteed intersection" `Quick test_guaranteed_intersection;
          Alcotest.test_case "set intersection" `Quick test_set_intersection;
        ] );
      ( "timed-quorum",
        [
          Alcotest.test_case "acquire samples actives" `Quick test_acquire_samples_actives;
          Alcotest.test_case "acquire insufficient" `Quick test_acquire_insufficient;
          Alcotest.test_case "expiry and survivors" `Quick test_expiry_and_survivors;
          Alcotest.test_case "intersecting survivors" `Quick test_intersecting_survivors;
          Alcotest.test_case "decay law" `Quick test_decay_law;
          Alcotest.test_case "invalid args" `Quick test_acquire_invalid;
        ] );
      qsuite "quorum-props" [ prop_majorities_intersect; prop_decay_matches_simulation ];
    ]
