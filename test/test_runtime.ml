(* Tests for the Unix runtime backend: wire-codec round trips for
   every protocol's messages, strict truncation behaviour, deframer
   chunking, and a live 3-node ES deployment over loopback TCP whose
   merged trace must audit to the same Regularity verdict as an
   equivalent simulated run. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
open Dds_workload
module Loop = Dds_runtime_unix.Loop
module Frame = Dds_runtime_unix.Frame
module Node = Dds_runtime_unix.Node
module Client = Dds_runtime_unix.Client
module Load = Dds_runtime_unix.Load

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Generators *)

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.bottom);
        (8, map2 (fun data sn -> { Value.data; sn }) int (map abs int));
      ])

let sync_msg_gen =
  QCheck.Gen.(
    oneof
      [
        return Sync_register.Inquiry;
        map (fun v -> Sync_register.Reply v) value_gen;
        map (fun v -> Sync_register.Write_msg v) value_gen;
      ])

let es_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun r_sn -> Es_register.Inquiry { r_sn }) nat;
        map (fun r_sn -> Es_register.Read_req { r_sn }) nat;
        map2 (fun value r_sn -> Es_register.Reply { value; r_sn }) value_gen nat;
        map (fun value -> Es_register.Write_msg { value }) value_gen;
        map (fun sn -> Es_register.Ack { sn }) nat;
        map (fun r_sn -> Es_register.Dl_prev { r_sn }) nat;
      ])

let abd_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun r_sn -> Abd_register.Read_req { r_sn }) nat;
        map2 (fun value r_sn -> Abd_register.Read_reply { value; r_sn }) value_gen nat;
        map2 (fun value wid -> Abd_register.Write_req { value; wid }) value_gen nat;
        map (fun wid -> Abd_register.Write_ack { wid }) nat;
      ])

let encode put msg =
  let b = Buffer.create 64 in
  put b msg;
  Buffer.contents b

let roundtrips (type m) (module P : Register_intf.PROTOCOL with type msg = m) eq pp gen =
  QCheck.Test.make ~count:500
    ~name:(Printf.sprintf "%s codec round-trips" P.name)
    (QCheck.make ~print:(Format.asprintf "%a" pp) gen)
    (fun msg ->
      let s = encode P.put_msg msg in
      let r = Wire.reader s in
      let back = P.get_msg r in
      Wire.expect_end r;
      eq msg back)

(* Every strict prefix of an encoding must raise Truncated — no prefix
   of a valid message is itself a valid message. *)
let rejects_truncation (type m) (module P : Register_intf.PROTOCOL with type msg = m) gen =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "%s codec rejects truncation" P.name)
    (QCheck.make gen)
    (fun msg ->
      let s = encode P.put_msg msg in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        let prefix = String.sub s 0 k in
        (match P.get_msg (Wire.reader prefix) with
        | _ -> ok := false
        | exception Wire.Truncated -> ()
        | exception Wire.Malformed _ -> ())
      done;
      !ok)

let codec_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      roundtrips (module Sync_register) ( = ) Sync_register.pp_msg sync_msg_gen;
      roundtrips (module Es_register) ( = ) Es_register.pp_msg es_msg_gen;
      roundtrips (module Abd_register) ( = ) Abd_register.pp_msg abd_msg_gen;
      rejects_truncation (module Sync_register) sync_msg_gen;
      rejects_truncation (module Es_register) es_msg_gen;
      rejects_truncation (module Abd_register) abd_msg_gen;
    ]

(* ------------------------------------------------------------------ *)
(* Wire primitives *)

let test_int_extremes () =
  List.iter
    (fun v ->
      let b = Buffer.create 8 in
      Wire.put_int b v;
      check_int "int round-trip" v (Wire.get_int (Wire.reader (Buffer.contents b))))
    [ 0; 1; -1; max_int; min_int; 42; -9_999_999_999 ]

let test_bottom_value_roundtrip () =
  let b = Buffer.create 16 in
  Value.put b Value.bottom;
  let back = Value.get (Wire.reader (Buffer.contents b)) in
  check_bool "bottom survives" true (Value.is_bottom back)

let test_expect_end () =
  let b = Buffer.create 8 in
  Wire.put_int b 7;
  Wire.put_u8 b 9;
  let r = Wire.reader (Buffer.contents b) in
  check_int "int" 7 (Wire.get_int r);
  (match Wire.expect_end r with
  | () -> Alcotest.fail "trailing byte not rejected"
  | exception Wire.Malformed _ -> ());
  check_int "trailing" 9 (Wire.get_u8 r);
  Wire.expect_end r

(* Frame several payloads, feed the concatenation to a deframer in
   arbitrary chunk sizes: the same payloads must pop out, in order,
   regardless of how the bytes were sliced. *)
let deframer_chunking =
  QCheck.Test.make ~count:300 ~name:"deframer reassembles across arbitrary chunking"
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 0 8) (string_size ~gen:char (int_range 0 64)))
            (list_size (int_range 1 40) (int_range 1 17))))
    (fun (payloads, chunks) ->
      let stream =
        String.concat ""
          (List.map
             (fun p ->
               let b = Buffer.create 64 in
               Buffer.add_string b p;
               Wire.frame b)
             payloads)
      in
      let d = Wire.deframer () in
      let out = ref [] in
      let pos = ref 0 in
      let sizes = ref chunks in
      while !pos < String.length stream do
        let size =
          match !sizes with
          | s :: rest ->
            sizes := rest @ [ s ];
            s
          | [] -> 1
        in
        let len = Stdlib.min size (String.length stream - !pos) in
        Wire.feed d (Bytes.of_string (String.sub stream !pos len)) len;
        pos := !pos + len;
        let continue = ref true in
        while !continue do
          match Wire.next_frame d with
          | Some p -> out := p :: !out
          | None -> continue := false
        done
      done;
      Wire.pending_bytes d = 0 && List.rev !out = payloads)

let test_oversized_frame_rejected () =
  let d = Wire.deframer () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (Wire.max_frame + 1));
  match Wire.feed d b 4 with
  | () -> Alcotest.fail "oversized length accepted"
  | exception Wire.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Live loopback deployment *)

module N_es = Node.Make (Es_register)

let bind_ephemeral () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  (fd, port)

(* The monitor configuration `dds audit --proto es` would build: the
   ES churn bound and standing-majority assumption, liveness at the
   default k = 10. delta is in the trace's tick unit — simulator ticks
   for a simulated trace, milliseconds for a wire trace. *)
let es_monitor_config ~n ~delta =
  let base = Dds_monitor.Monitor.default ~n ~delta in
  {
    base with
    Dds_monitor.Monitor.liveness_bound = Some (10 * delta);
    churn_bound = Some (1.0 /. (3.0 *. float_of_int delta *. float_of_int n));
    majority = true;
  }

let audit_verdict ~n ~delta evs =
  let m = Dds_monitor.Monitor.create (es_monitor_config ~n ~delta) in
  List.iter (fun st -> ignore (Dds_monitor.Monitor.feed m st)) evs;
  let last_at =
    List.fold_left (fun acc ({ at; _ } : Event.stamped) -> Time.max acc at) Time.zero evs
  in
  ignore (Dds_monitor.Monitor.finalize m ~at:last_at);
  let report = Replay.history_of_events ~initial:(Value.initial 0) evs |> Regularity.check in
  (Dds_monitor.Monitor.violations m = [], Regularity.is_ok report)

let read_trace path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Export.events_of_jsonl_lenient text with
  | Ok (evs, _) -> evs
  | Error e -> Alcotest.failf "%s: %s" path e

let test_loopback_deployment () =
  let n = 3 in
  let socks = Array.init n (fun _ -> bind_ephemeral ()) in
  let addrs = Array.map (fun (_, port) -> ("127.0.0.1", port)) socks in
  let traces =
    Array.init n (fun i -> Filename.temp_file (Printf.sprintf "dds-node%d-" i) ".jsonl")
  in
  let epoch_ms = Node.default_epoch_ms () in
  let children =
    Array.init n (fun i ->
        let ctl_r, ctl_w = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          (* Child: run node i until the parent writes to the control
             pipe, then shut down cleanly (flushing the trace). *)
          Unix.close ctl_w;
          (try
             let loop = Loop.create () in
             let cfg =
               {
                 (Node.default_config ~self:i ~addrs) with
                 Node.epoch_ms;
                 trace_path = Some traces.(i);
                 listen_fd = Some (fst socks.(i));
               }
             in
             let node = N_es.create ~loop cfg (Es_register.default_params ~n) in
             Loop.watch_read loop ctl_r (fun () ->
                 N_es.shutdown node;
                 Loop.stop loop);
             Loop.run loop
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.close ctl_r;
          (pid, ctl_w))
  in
  Array.iter (fun (fd, _) -> Unix.close fd) socks;
  (* Scripted ops through the blocking client: two writes on node 0,
     then reads through two different nodes must observe the last
     write (no concurrent writer => regularity pins the value). *)
  let c0 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(0)) in
  (match Client.write c0 11 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write 11: %s" e);
  (match Client.write c0 22 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write 22: %s" e);
  (match Client.read c0 with
  | Ok v -> check_int "read-own-write via node 0" 22 v.Value.data
  | Error e -> Alcotest.failf "read node 0: %s" e);
  let c1 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(1)) in
  (match Client.read c1 with
  | Ok v -> check_int "read via node 1" 22 v.Value.data
  | Error e -> Alcotest.failf "read node 1: %s" e);
  Client.close c0;
  Client.close c1;
  (* A short burst of closed-loop load: every op must complete. *)
  let report = Load.run ~addrs ~clients:6 ~duration_s:0.6 ~write_ratio:0.2 ~route:Load.Fixed ~seed:7 in
  check_bool "load did work" true (report.Load.ops > 50);
  check_int "load errors" 0 report.Load.errors;
  check_bool "load wrote" true (report.Load.writes > 0);
  (* Key-hash routing spreads ops over the whole mesh through the
     sharded store's placement hash; everything must still complete.
     Read-only: this trace is audited against the single-writer regime
     below, and key-hash writes land on every node by design. *)
  let kh = Load.run ~addrs ~clients:6 ~duration_s:0.4 ~write_ratio:0.0 ~route:Load.Key_hash ~seed:7 in
  check_bool "key-hash load did work" true (kh.Load.ops > 50);
  check_int "key-hash load errors" 0 kh.Load.errors;
  check_int "key-hash load read-only" kh.Load.ops kh.Load.reads;
  (* Tear the mesh down and collect the traces. *)
  Array.iter (fun (_, ctl_w) -> ignore (Unix.write ctl_w (Bytes.make 1 'q') 0 1)) children;
  Array.iter
    (fun (pid, ctl_w) ->
      ignore (Unix.waitpid [] pid);
      Unix.close ctl_w)
    children;
  let merged =
    Array.to_list traces
    |> List.concat_map read_trace
    |> List.stable_sort (fun (a : Event.stamped) b -> Time.compare a.at b.at)
  in
  Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) traces;
  check_bool "merged trace non-trivial" true (List.length merged > 100);
  (* The wire trace must audit exactly like a simulated deployment:
     clean monitors, REGULAR verdict. delta = 30 ms on the wire (1
     tick = 1 ms), delta = 3 ticks in the simulator. *)
  let wire_monitors_ok, wire_regular = audit_verdict ~n ~delta:30 merged in
  let module Es_d = Deployment.Make (Es_register) in
  let sim_cfg =
    {
      (Deployment.default_config ~seed:5 ~n ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:0.0)
      with
      Deployment.events_enabled = true;
    }
  in
  let d = Es_d.create sim_cfg (Es_register.default_params ~n) in
  let module G = Generator.Make (Es_d) in
  G.run d
    {
      Generator.read_rate = 0.5;
      write_every = 15;
      start = Time.of_int 1;
      until = Time.of_int 300;
    };
  let sim_monitors_ok, sim_regular = audit_verdict ~n ~delta:3 (Event.events (Es_d.events d)) in
  check_bool "sim monitors clean" true sim_monitors_ok;
  check_bool "sim regular" true sim_regular;
  check_bool "wire monitors verdict matches sim" sim_monitors_ok wire_monitors_ok;
  check_bool "wire regularity verdict matches sim" sim_regular wire_regular

let () =
  Alcotest.run "runtime"
    [
      ("codec", codec_tests);
      ( "wire",
        [
          Alcotest.test_case "int extremes round-trip" `Quick test_int_extremes;
          Alcotest.test_case "bottom value round-trips" `Quick test_bottom_value_roundtrip;
          Alcotest.test_case "expect_end rejects trailing bytes" `Quick test_expect_end;
          QCheck_alcotest.to_alcotest deframer_chunking;
          Alcotest.test_case "oversized frame rejected" `Quick test_oversized_frame_rejected;
        ] );
      ( "loopback",
        [ Alcotest.test_case "3-node es over TCP audits REGULAR" `Quick test_loopback_deployment ] );
    ]
