(* Tests for the Unix runtime backend: wire-codec round trips for
   every protocol's messages, strict truncation behaviour, deframer
   chunking, the v2 keyed frame envelope (round trips, strict-prefix
   rejection, v1/v2 negotiation matrix), and live loopback TCP
   deployments — a 3-node single register and a 3-node 2-shard keyed
   store — whose merged traces must audit to the same Regularity
   verdicts as equivalent simulated runs. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
open Dds_workload
module Loop = Dds_runtime_unix.Loop
module Frame = Dds_runtime_unix.Frame
module Node = Dds_runtime_unix.Node
module Store = Dds_runtime_unix.Store
module Placement = Dds_runtime_unix.Placement
module Client = Dds_runtime_unix.Client
module Load = Dds_runtime_unix.Load
module Shard = Dds_shard.Shard

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Generators *)

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.bottom);
        (8, map2 (fun data sn -> { Value.data; sn }) int (map abs int));
      ])

let sync_msg_gen =
  QCheck.Gen.(
    oneof
      [
        return Sync_register.Inquiry;
        map (fun v -> Sync_register.Reply v) value_gen;
        map (fun v -> Sync_register.Write_msg v) value_gen;
      ])

let es_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun r_sn -> Es_register.Inquiry { r_sn }) nat;
        map (fun r_sn -> Es_register.Read_req { r_sn }) nat;
        map2 (fun value r_sn -> Es_register.Reply { value; r_sn }) value_gen nat;
        map (fun value -> Es_register.Write_msg { value }) value_gen;
        map (fun sn -> Es_register.Ack { sn }) nat;
        map (fun r_sn -> Es_register.Dl_prev { r_sn }) nat;
      ])

let abd_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun r_sn -> Abd_register.Read_req { r_sn }) nat;
        map2 (fun value r_sn -> Abd_register.Read_reply { value; r_sn }) value_gen nat;
        map2 (fun value wid -> Abd_register.Write_req { value; wid }) value_gen nat;
        map (fun wid -> Abd_register.Write_ack { wid }) nat;
      ])

let encode put msg =
  let b = Buffer.create 64 in
  put b msg;
  Buffer.contents b

let roundtrips (type m) (module P : Register_intf.PROTOCOL with type msg = m) eq pp gen =
  QCheck.Test.make ~count:500
    ~name:(Printf.sprintf "%s codec round-trips" P.name)
    (QCheck.make ~print:(Format.asprintf "%a" pp) gen)
    (fun msg ->
      let s = encode P.put_msg msg in
      let r = Wire.reader s in
      let back = P.get_msg r in
      Wire.expect_end r;
      eq msg back)

(* Every strict prefix of an encoding must raise Truncated — no prefix
   of a valid message is itself a valid message. *)
let rejects_truncation (type m) (module P : Register_intf.PROTOCOL with type msg = m) gen =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "%s codec rejects truncation" P.name)
    (QCheck.make gen)
    (fun msg ->
      let s = encode P.put_msg msg in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        let prefix = String.sub s 0 k in
        (match P.get_msg (Wire.reader prefix) with
        | _ -> ok := false
        | exception Wire.Truncated -> ()
        | exception Wire.Malformed _ -> ())
      done;
      !ok)

let codec_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      roundtrips (module Sync_register) ( = ) Sync_register.pp_msg sync_msg_gen;
      roundtrips (module Es_register) ( = ) Es_register.pp_msg es_msg_gen;
      roundtrips (module Abd_register) ( = ) Abd_register.pp_msg abd_msg_gen;
      rejects_truncation (module Sync_register) sync_msg_gen;
      rejects_truncation (module Es_register) es_msg_gen;
      rejects_truncation (module Abd_register) abd_msg_gen;
    ]

(* ------------------------------------------------------------------ *)
(* v2 keyed frame envelope *)

let key_gen = QCheck.Gen.(map abs int)  (* keys are 63-bit non-negative *)

(* A protocol message wrapped in a v2 Msg envelope survives the trip:
   src, lamport and shard come back exactly, and the remainder reader
   decodes to the original message with nothing left over. *)
let envelope_roundtrips (type m) (module P : Register_intf.PROTOCOL with type msg = m) eq gen =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "%s v2 Msg envelope round-trips" P.name)
    (QCheck.make QCheck.Gen.(pair (pair nat nat) (pair (int_bound 1023) gen)))
    (fun ((src, lamport), (shard, msg)) ->
      let b = Frame.buf_msg_header ~src ~lamport ~shard () in
      P.put_msg b msg;
      match Frame.decode ~version:Wire.v2 (Buffer.contents b) with
      | Frame.Msg { src = s; lamport = lc; shard = sh; rest } ->
        let back = P.get_msg rest in
        Wire.expect_end rest;
        s = src && lc = lamport && sh = shard && eq msg back
      | _ -> false)

(* The keyed client frames: req and key survive at v2, and a v1 decode
   of a v1 encoding of the same op means key 0 (the only key v1 can
   name). *)
let keyed_client_frames_roundtrip =
  QCheck.Test.make ~count:500 ~name:"v2 keyed client frames round-trip"
    (QCheck.make QCheck.Gen.(pair (pair nat key_gen) (pair int value_gen)))
    (fun ((req, key), (data, value)) ->
      let dec b = Frame.decode ~version:Wire.v2 (Buffer.contents b) in
      (match dec (Frame.buf_read_req ~req ~key ()) with
      | Frame.Read_req { req = r; key = k } -> r = req && k = key
      | _ -> false)
      && (match dec (Frame.buf_write_req ~req ~key ~data ()) with
         | Frame.Write_req { req = r; key = k; data = d } -> r = req && k = key && d = data
         | _ -> false)
      &&
      match dec (Frame.buf_resp ~req ~key value) with
      | Frame.Resp { req = r; key = k; value = v } -> r = req && k = key && v = value
      | _ -> false)

let keyed_client_frames_v1_mean_key0 =
  QCheck.Test.make ~count:200 ~name:"v1 client frames decode as key 0"
    (QCheck.make QCheck.Gen.(pair nat int))
    (fun (req, data) ->
      let dec b = Frame.decode ~version:Wire.v1 (Buffer.contents b) in
      (match dec (Frame.buf_read_req ~version:Wire.v1 ~req ~key:0 ()) with
      | Frame.Read_req { req = r; key = 0 } -> r = req
      | _ -> false)
      &&
      match dec (Frame.buf_write_req ~version:Wire.v1 ~req ~key:0 ~data ()) with
      | Frame.Write_req { req = r; key = 0; data = d } -> r = req && d = data
      | _ -> false)

(* Every strict prefix of a v2 envelope encoding must raise — same
   discipline the protocol codecs already obey, extended to the keyed
   layouts. Msg needs the protocol codec applied to its remainder (the
   envelope defers payload decoding by design). *)
let envelope_rejects_truncation =
  QCheck.Test.make ~count:100 ~name:"v2 envelope rejects strict prefixes"
    (QCheck.make QCheck.Gen.(pair (pair nat key_gen) (pair int es_msg_gen)))
    (fun ((req, key), (data, msg)) ->
      let cases =
        [ (Buffer.contents (Frame.buf_read_req ~req ~key ()), false);
          (Buffer.contents (Frame.buf_write_req ~req ~key ~data ()), false);
          (Buffer.contents (Frame.buf_resp ~req ~key Value.bottom), false);
          (Buffer.contents (Frame.buf_err ~req "refused"), false);
          ( (let b = Frame.buf_msg_header ~src:1 ~lamport:2 ~shard:3 () in
             Es_register.put_msg b msg;
             Buffer.contents b),
            true ) ]
      in
      List.for_all
        (fun (s, is_msg) ->
          let ok = ref true in
          for k = 0 to String.length s - 1 do
            let prefix = String.sub s 0 k in
            match Frame.decode ~version:Wire.v2 prefix with
            | Frame.Msg { rest; _ } when is_msg -> (
              (* header may parse; the payload decode must then fail *)
              match Es_register.get_msg rest with
              | _ -> ok := false
              | exception Wire.Truncated -> ()
              | exception Wire.Malformed _ -> ())
            | _ -> ok := false
            | exception Wire.Truncated -> ()
            | exception Wire.Malformed _ -> ()
          done;
          !ok)
        cases)

(* The one deliberate prefix relation in the protocol: a v2 Hello minus
   its trailing version byte IS a valid v1 Hello. That dual decode is
   how negotiation bootstraps — the hello is self-describing, so it is
   exempt from the strict-prefix rule above. *)
let test_hello_dual_decode () =
  let v2 = Buffer.contents (Frame.buf_hello ~version:Wire.v2 5) in
  (match Frame.decode v2 with
  | Frame.Hello { pid = 5; version } -> check_int "v2 hello version" Wire.v2 version
  | _ -> Alcotest.fail "v2 hello did not decode");
  let v1 = String.sub v2 0 (String.length v2 - 1) in
  (match Frame.decode v1 with
  | Frame.Hello { pid = 5; version } -> check_int "v1 hello version" Wire.v1 version
  | _ -> Alcotest.fail "v1 hello prefix did not decode");
  match Frame.decode (Buffer.contents (Frame.buf_client_hello ~version:Wire.v1 ())) with
  | Frame.Client_hello { version } -> check_int "v1 client hello version" Wire.v1 version
  | _ -> Alcotest.fail "v1 client hello did not decode"

let test_negative_key_rejected () =
  let b = Buffer.create 8 in
  match Wire.put_key b (-1) with
  | () -> Alcotest.fail "negative key accepted"
  | exception Wire.Malformed _ -> ()

let envelope_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      envelope_roundtrips (module Sync_register) ( = ) sync_msg_gen;
      envelope_roundtrips (module Es_register) ( = ) es_msg_gen;
      envelope_roundtrips (module Abd_register) ( = ) abd_msg_gen;
      keyed_client_frames_roundtrip;
      keyed_client_frames_v1_mean_key0;
      envelope_rejects_truncation;
    ]
  @ [
      Alcotest.test_case "hello dual-decodes across versions" `Quick test_hello_dual_decode;
      Alcotest.test_case "negative key rejected at encode" `Quick test_negative_key_rejected;
    ]

(* ------------------------------------------------------------------ *)
(* Wire primitives *)

let test_int_extremes () =
  List.iter
    (fun v ->
      let b = Buffer.create 8 in
      Wire.put_int b v;
      check_int "int round-trip" v (Wire.get_int (Wire.reader (Buffer.contents b))))
    [ 0; 1; -1; max_int; min_int; 42; -9_999_999_999 ]

let test_bottom_value_roundtrip () =
  let b = Buffer.create 16 in
  Value.put b Value.bottom;
  let back = Value.get (Wire.reader (Buffer.contents b)) in
  check_bool "bottom survives" true (Value.is_bottom back)

let test_expect_end () =
  let b = Buffer.create 8 in
  Wire.put_int b 7;
  Wire.put_u8 b 9;
  let r = Wire.reader (Buffer.contents b) in
  check_int "int" 7 (Wire.get_int r);
  (match Wire.expect_end r with
  | () -> Alcotest.fail "trailing byte not rejected"
  | exception Wire.Malformed _ -> ());
  check_int "trailing" 9 (Wire.get_u8 r);
  Wire.expect_end r

(* Frame several payloads, feed the concatenation to a deframer in
   arbitrary chunk sizes: the same payloads must pop out, in order,
   regardless of how the bytes were sliced. *)
let deframer_chunking =
  QCheck.Test.make ~count:300 ~name:"deframer reassembles across arbitrary chunking"
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 0 8) (string_size ~gen:char (int_range 0 64)))
            (list_size (int_range 1 40) (int_range 1 17))))
    (fun (payloads, chunks) ->
      let stream =
        String.concat ""
          (List.map
             (fun p ->
               let b = Buffer.create 64 in
               Buffer.add_string b p;
               Wire.frame b)
             payloads)
      in
      let d = Wire.deframer () in
      let out = ref [] in
      let pos = ref 0 in
      let sizes = ref chunks in
      while !pos < String.length stream do
        let size =
          match !sizes with
          | s :: rest ->
            sizes := rest @ [ s ];
            s
          | [] -> 1
        in
        let len = Stdlib.min size (String.length stream - !pos) in
        Wire.feed d (Bytes.of_string (String.sub stream !pos len)) len;
        pos := !pos + len;
        let continue = ref true in
        while !continue do
          match Wire.next_frame d with
          | Some p -> out := p :: !out
          | None -> continue := false
        done
      done;
      Wire.pending_bytes d = 0 && List.rev !out = payloads)

let test_oversized_frame_rejected () =
  let d = Wire.deframer () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (Wire.max_frame + 1));
  match Wire.feed d b 4 with
  | () -> Alcotest.fail "oversized length accepted"
  | exception Wire.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Live loopback deployment *)

module N_es = Node.Make (Es_register)

let bind_ephemeral () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  (fd, port)

(* The monitor configuration `dds audit --proto es` would build: the
   ES churn bound and standing-majority assumption, liveness at the
   default k = 10. delta is in the trace's tick unit — simulator ticks
   for a simulated trace, milliseconds for a wire trace. *)
let es_monitor_config ~n ~delta =
  let base = Dds_monitor.Monitor.default ~n ~delta in
  {
    base with
    Dds_monitor.Monitor.liveness_bound = Some (10 * delta);
    churn_bound = Some (1.0 /. (3.0 *. float_of_int delta *. float_of_int n));
    majority = true;
  }

let audit_verdict ~n ~delta evs =
  let m = Dds_monitor.Monitor.create (es_monitor_config ~n ~delta) in
  List.iter (fun st -> ignore (Dds_monitor.Monitor.feed m st)) evs;
  let last_at =
    List.fold_left (fun acc ({ at; _ } : Event.stamped) -> Time.max acc at) Time.zero evs
  in
  ignore (Dds_monitor.Monitor.finalize m ~at:last_at);
  let report = Replay.history_of_events ~initial:(Value.initial 0) evs |> Regularity.check in
  (Dds_monitor.Monitor.violations m = [], Regularity.is_ok report)

let read_trace path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Export.events_of_jsonl_lenient text with
  | Ok (evs, _) -> evs
  | Error e -> Alcotest.failf "%s: %s" path e

let test_loopback_deployment () =
  let n = 3 in
  let socks = Array.init n (fun _ -> bind_ephemeral ()) in
  let addrs = Array.map (fun (_, port) -> ("127.0.0.1", port)) socks in
  let traces =
    Array.init n (fun i -> Filename.temp_file (Printf.sprintf "dds-node%d-" i) ".jsonl")
  in
  let epoch_ms = Node.default_epoch_ms () in
  let children =
    Array.init n (fun i ->
        let ctl_r, ctl_w = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          (* Child: run node i until the parent writes to the control
             pipe, then shut down cleanly (flushing the trace). *)
          Unix.close ctl_w;
          (try
             let loop = Loop.create () in
             let cfg =
               {
                 (Node.default_config ~self:i ~addrs) with
                 Node.epoch_ms;
                 trace_path = Some traces.(i);
                 listen_fd = Some (fst socks.(i));
               }
             in
             let node = N_es.create ~loop cfg (Es_register.default_params ~n) in
             Loop.watch_read loop ctl_r (fun () ->
                 N_es.shutdown node;
                 Loop.stop loop);
             Loop.run loop
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.close ctl_r;
          (pid, ctl_w))
  in
  Array.iter (fun (fd, _) -> Unix.close fd) socks;
  (* Scripted ops through the blocking client: two writes on node 0,
     then reads through two different nodes must observe the last
     write (no concurrent writer => regularity pins the value). *)
  let c0 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(0)) () in
  (match Client.write c0 11 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write 11: %s" e);
  (match Client.write c0 22 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write 22: %s" e);
  (match Client.read c0 with
  | Ok v -> check_int "read-own-write via node 0" 22 v.Value.data
  | Error e -> Alcotest.failf "read node 0: %s" e);
  let c1 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(1)) () in
  (match Client.read c1 with
  | Ok v -> check_int "read via node 1" 22 v.Value.data
  | Error e -> Alcotest.failf "read node 1: %s" e);
  Client.close c0;
  Client.close c1;
  (* A short burst of closed-loop load: every op must complete. *)
  let report = Load.run ~addrs ~clients:6 ~duration_s:0.6 ~write_ratio:0.2 ~route:Load.Fixed ~seed:7 () in
  check_bool "load did work" true (report.Load.ops > 50);
  check_int "load errors" 0 report.Load.errors;
  check_bool "load wrote" true (report.Load.writes > 0);
  (* Key-hash routing spreads ops over the whole mesh through the
     sharded store's placement hash; everything must still complete.
     Read-only: this trace is audited against the single-writer regime
     below, and key-hash writes land on every node by design. *)
  let kh = Load.run ~addrs ~clients:6 ~duration_s:0.4 ~write_ratio:0.0 ~route:Load.Key_hash ~seed:7 () in
  check_bool "key-hash load did work" true (kh.Load.ops > 50);
  check_int "key-hash load errors" 0 kh.Load.errors;
  check_int "key-hash load read-only" kh.Load.ops kh.Load.reads;
  (* Tear the mesh down and collect the traces. *)
  Array.iter (fun (_, ctl_w) -> ignore (Unix.write ctl_w (Bytes.make 1 'q') 0 1)) children;
  Array.iter
    (fun (pid, ctl_w) ->
      ignore (Unix.waitpid [] pid);
      Unix.close ctl_w)
    children;
  let merged =
    Array.to_list traces
    |> List.concat_map read_trace
    |> List.stable_sort (fun (a : Event.stamped) b -> Time.compare a.at b.at)
  in
  Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) traces;
  check_bool "merged trace non-trivial" true (List.length merged > 100);
  (* The wire trace must audit exactly like a simulated deployment:
     clean monitors, REGULAR verdict. delta = 30 ms on the wire (1
     tick = 1 ms), delta = 3 ticks in the simulator. *)
  let wire_monitors_ok, wire_regular = audit_verdict ~n ~delta:30 merged in
  let module Es_d = Deployment.Make (Es_register) in
  let sim_cfg =
    {
      (Deployment.default_config ~seed:5 ~n ~delay:(Delay.synchronous ~delta:3)
         ~churn_rate:0.0)
      with
      Deployment.events_enabled = true;
    }
  in
  let d = Es_d.create sim_cfg (Es_register.default_params ~n) in
  let module G = Generator.Make (Es_d) in
  G.run d
    {
      Generator.read_rate = 0.5;
      write_every = 15;
      start = Time.of_int 1;
      until = Time.of_int 300;
    };
  let sim_monitors_ok, sim_regular = audit_verdict ~n ~delta:3 (Event.events (Es_d.events d)) in
  check_bool "sim monitors clean" true sim_monitors_ok;
  check_bool "sim regular" true sim_regular;
  check_bool "wire monitors verdict matches sim" sim_monitors_ok wire_monitors_ok;
  check_bool "wire regularity verdict matches sim" sim_regular wire_regular

(* ------------------------------------------------------------------ *)
(* Version negotiation against a live server *)

(* Fork a single-node es server and hand its port to [f]; teardown is
   unconditional so a failing probe cannot leak the child. *)
let with_single_node_server f =
  let sock, port = bind_ephemeral () in
  let addrs = [| ("127.0.0.1", port) |] in
  let ctl_r, ctl_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close ctl_w;
    (try
       let loop = Loop.create () in
       let cfg =
         {
           (Node.default_config ~self:0 ~addrs) with
           Node.events_enabled = false;
           listen_fd = Some sock;
         }
       in
       let node = N_es.create ~loop cfg (Es_register.default_params ~n:1) in
       Loop.watch_read loop ctl_r (fun () ->
           N_es.shutdown node;
           Loop.stop loop);
       Loop.run loop
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close ctl_r;
    Unix.close sock;
    Fun.protect
      ~finally:(fun () ->
        ignore (Unix.write ctl_w (Bytes.make 1 'q') 0 1);
        ignore (Unix.waitpid [] pid);
        Unix.close ctl_w)
      (fun () -> f port)

let raw_dial port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let raw_send fd b =
  let s = Wire.frame b in
  ignore (Unix.write_substring fd s 0 (String.length s))

let raw_recv_frame fd =
  let d = Wire.deframer () in
  let buf = Bytes.create 4096 in
  let rec go () =
    match Wire.next_frame d with
    | Some p -> p
    | None ->
      let n = Unix.read fd buf 0 4096 in
      if n = 0 then Alcotest.fail "server closed without answering";
      Wire.feed d buf n;
      go ()
  in
  go ()

let test_negotiation_matrix () =
  with_single_node_server (fun port ->
      (* v1 client against a v2 server: byte-identical legacy frames,
         no hello ack, ops address the only register (key 0). *)
      let c1 = Client.connect ~wire:Wire.v1 ~host:"127.0.0.1" ~port () in
      check_int "legacy client speaks v1" Wire.v1 (Client.version c1);
      (match Client.write c1 41 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "v1 write: %s" e);
      (match Client.read c1 with
      | Ok v -> check_int "v1 read sees v1 write" 41 v.Value.data
      | Error e -> Alcotest.failf "v1 read: %s" e);
      (match Client.read ~key:7 c1 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "v1 client accepted a nonzero key");
      Client.close c1;
      (* v2 client: negotiates, then addresses keys. On a 1-shard
         server every key routes to shard 0, so the keyed read must
         observe the v1 write — the two protocols name one register. *)
      let c2 = Client.connect ~host:"127.0.0.1" ~port () in
      check_int "client negotiated v2" Wire.v2 (Client.version c2);
      (match Client.read ~key:9000 c2 with
      | Ok v -> check_int "keyed read via 1-shard server" 41 v.Value.data
      | Error e -> Alcotest.failf "v2 keyed read: %s" e);
      (match Client.write ~key:9000 c2 52 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "v2 keyed write: %s" e);
      Client.close c2;
      (* A client from the future (v3) is clamped to what we speak:
         the hello ack names v2, not an error. *)
      let fd = raw_dial port in
      let b = Buffer.create 4 in
      Wire.put_u8 b 1;
      Wire.put_u8 b 3;
      raw_send fd b;
      (match Frame.decode ~version:Wire.v2 (raw_recv_frame fd) with
      | Frame.Hello { pid = 0; version } -> check_int "clamped to v2" Wire.v2 version
      | _ -> Alcotest.fail "v3 client hello not acked with a hello");
      Unix.close fd;
      (* Version 0 is below anything this protocol ever spoke: a typed
         connection-level Err, then close — not a crash, not silence. *)
      let fd = raw_dial port in
      let b = Buffer.create 4 in
      Wire.put_u8 b 1;
      Wire.put_u8 b 0;
      raw_send fd b;
      (match Frame.decode ~version:Wire.v2 (raw_recv_frame fd) with
      | Frame.Err { req; _ } -> check_int "version-0 err is connection-level" Frame.no_req req
      | _ -> Alcotest.fail "version 0 not refused with Err");
      Unix.close fd;
      (* Same for a peer hello announcing a version we cannot decode. *)
      let fd = raw_dial port in
      let b = Buffer.create 8 in
      Wire.put_u8 b 0;
      Wire.put_int b 1;
      Wire.put_u8 b 9;
      raw_send fd b;
      (match Frame.decode ~version:Wire.v2 (raw_recv_frame fd) with
      | Frame.Err { req; _ } -> check_int "peer-v9 err is connection-level" Frame.no_req req
      | _ -> Alcotest.fail "peer hello v9 not refused with Err");
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Live multi-shard deployment *)

module S_es = Store.Make (Es_register)

let read_tagged_trace path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Export.tagged_events_of_jsonl_lenient text with
  | Ok (evs, _) -> evs
  | Error e -> Alcotest.failf "%s: %s" path e

(* The smallest key that lands on [shard] — scripted ops need one key
   per shard, and the placement hash is a pure function so searching
   the low key space is deterministic. *)
let key_on ~shards shard =
  let rec go k =
    if k > 10_000 then Alcotest.failf "no key below 10000 routes to shard %d" shard
    else if Shard.route ~shards ~key:k = shard then k
    else go (k + 1)
  in
  go 0

(* Three nodes hosting two shards under the placement "0;0,1;0,1":
   shard 0 lives on everyone (writer = node 0), shard 1 only on nodes
   1 and 2 (writer = node 1). Scripted keyed ops pin a value into each
   shard, a zipfian keyed load exercises the mesh, and the merged
   tagged traces must audit REGULAR per shard — matching an equivalent
   simulated sharded run. *)
let test_sharded_loopback () =
  let n = 3 and shards = 2 in
  let placement =
    match Placement.make ~nodes:n ~shards ~spec:(Some "0;0,1;0,1") with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let socks = Array.init n (fun _ -> bind_ephemeral ()) in
  let addrs = Array.map (fun (_, port) -> ("127.0.0.1", port)) socks in
  let traces =
    Array.init n (fun i -> Filename.temp_file (Printf.sprintf "dds-store%d-" i) ".jsonl")
  in
  let epoch_ms = Store.default_epoch_ms () in
  let children =
    Array.init n (fun i ->
        let ctl_r, ctl_w = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          Unix.close ctl_w;
          (try
             let loop = Loop.create () in
             let cfg =
               {
                 Store.self = i;
                 addrs;
                 placement;
                 join = false;
                 initial_value = 0;
                 epoch_ms;
                 events_enabled = true;
                 trace_path = Some traces.(i);
                 listen_fd = Some (fst socks.(i));
               }
             in
             let store =
               S_es.create ~loop cfg (fun shard ->
                   Es_register.default_params
                     ~n:(List.length (Placement.owners placement shard)))
             in
             Loop.watch_read loop ctl_r (fun () ->
                 S_es.shutdown store;
                 Loop.stop loop);
             Loop.run loop
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.close ctl_r;
          (pid, ctl_w))
  in
  Array.iter (fun (fd, _) -> Unix.close fd) socks;
  let k0 = key_on ~shards 0 and k1 = key_on ~shards 1 in
  (* Scripted keyed ops through each shard's writer, then cross-checked
     through node 2 (an owner of both shards). *)
  let c0 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(0)) () in
  check_int "scripted client negotiated v2" Wire.v2 (Client.version c0);
  (match Client.write ~key:k0 c0 111 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write shard 0: %s" e);
  let c1 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(1)) () in
  (match Client.write ~key:k1 c1 222 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write shard 1: %s" e);
  let c2 = Client.connect ~host:"127.0.0.1" ~port:(snd addrs.(2)) () in
  (match Client.read ~key:k0 c2 with
  | Ok v -> check_int "shard-0 read via node 2" 111 v.Value.data
  | Error e -> Alcotest.failf "read shard 0: %s" e);
  (match Client.read ~key:k1 c2 with
  | Ok v -> check_int "shard-1 read via node 2" 222 v.Value.data
  | Error e -> Alcotest.failf "read shard 1: %s" e);
  (* Node 0 does not own shard 1: the op must come back as a typed Err
     naming the misroute, not hang or crash the node. *)
  (match Client.read ~key:k1 c0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "node 0 served a shard it does not own");
  Client.close c0;
  Client.close c1;
  Client.close c2;
  (* Keyed zipfian load with the real placement: writes funnel to each
     shard's writer, reads spread over its owners, every op lands. *)
  let report =
    Load.run ~placement ~keys:64 ~skew:1.1 ~addrs ~clients:6 ~duration_s:0.6
      ~write_ratio:0.2 ~route:Load.Key_hash ~seed:9 ()
  in
  check_bool "keyed load did work" true (report.Load.ops > 50);
  check_int "keyed load errors" 0 report.Load.errors;
  check_bool "keyed load wrote" true (report.Load.writes > 0);
  check_int "hot class is top 1% (min 1)" 1 report.Load.hot_keys;
  check_int "hot + cold partition the ops" report.Load.ops
    (Histogram.count report.Load.hot_lat_us + Histogram.count report.Load.cold_lat_us);
  (* Tear down, merge the tagged traces, audit per shard. *)
  Array.iter (fun (_, ctl_w) -> ignore (Unix.write ctl_w (Bytes.make 1 'q') 0 1)) children;
  Array.iter
    (fun (pid, ctl_w) ->
      ignore (Unix.waitpid [] pid);
      Unix.close ctl_w)
    children;
  let merged = Array.to_list traces |> List.concat_map read_tagged_trace in
  Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) traces;
  let tags = List.sort_uniq compare (List.filter_map fst merged) in
  check (Alcotest.list Alcotest.int) "both shards tagged in the merged trace" [ 0; 1 ] tags;
  let shard_verdict shard =
    let evs =
      List.filter_map (fun (tag, ev) -> if tag = Some shard then Some ev else None) merged
      |> List.stable_sort (fun (a : Event.stamped) b -> Time.compare a.at b.at)
    in
    check_bool
      (Printf.sprintf "shard %d trace non-trivial" shard)
      true
      (List.length evs > 20);
    audit_verdict ~n:(List.length (Placement.owners placement shard)) ~delta:30 evs
  in
  let wire_verdicts = List.map shard_verdict [ 0; 1 ] in
  (* The simulated twin: same shard count, key space and skew, run
     through the simulator's sharded facade. Its per-shard verdicts
     are the reference the live ones must match. *)
  let module Es_d = Deployment.Make (Es_register) in
  let module Sh_es = Shard.Make (Es_d) in
  let sim =
    Sh_es.create
      {
        Shard.shards;
        keys = 64;
        base =
          {
            (Deployment.default_config ~seed:9 ~n ~delay:(Delay.synchronous ~delta:3)
               ~churn_rate:0.0)
            with
            Deployment.events_enabled = true;
          };
      }
      (Es_register.default_params ~n)
  in
  Sh_es.load sim
    (Skew.plan ~rng:(Rng.create ~seed:9)
       { (Skew.default ~keys:64 ~s:1.1 ~until:(Time.of_int 300)) with
         Skew.read_rate = 0.5;
         write_every = 10 });
  Sh_es.run_until sim (Time.of_int 400);
  check_bool "sim sharded store regular" true (Sh_es.regular sim);
  let sim_tagged = Sh_es.tagged_events sim in
  let sim_verdict shard =
    let evs =
      List.filter_map (fun (tag, ev) -> if tag = Some shard then Some ev else None) sim_tagged
    in
    audit_verdict ~n ~delta:3 evs
  in
  List.iteri
    (fun shard (wire_mon, wire_reg) ->
      let sim_mon, sim_reg = sim_verdict shard in
      check_bool (Printf.sprintf "sim shard %d monitors clean" shard) true sim_mon;
      check_bool (Printf.sprintf "sim shard %d regular" shard) true sim_reg;
      check_bool
        (Printf.sprintf "shard %d monitor verdict matches sim" shard)
        sim_mon wire_mon;
      check_bool
        (Printf.sprintf "shard %d regularity verdict matches sim" shard)
        sim_reg wire_reg)
    wire_verdicts

let () =
  Alcotest.run "runtime"
    [
      ("codec", codec_tests);
      ("envelope", envelope_tests);
      ( "wire",
        [
          Alcotest.test_case "int extremes round-trip" `Quick test_int_extremes;
          Alcotest.test_case "bottom value round-trips" `Quick test_bottom_value_roundtrip;
          Alcotest.test_case "expect_end rejects trailing bytes" `Quick test_expect_end;
          QCheck_alcotest.to_alcotest deframer_chunking;
          Alcotest.test_case "oversized frame rejected" `Quick test_oversized_frame_rejected;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "3-node es over TCP audits REGULAR" `Quick
            test_loopback_deployment;
          Alcotest.test_case "v1/v2 negotiation matrix against a live server" `Quick
            test_negotiation_matrix;
          Alcotest.test_case "2-shard keyed store over TCP audits REGULAR per shard" `Quick
            test_sharded_loopback;
        ] );
    ]
