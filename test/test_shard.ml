(* Tests for the sharded multi-register key-space (lib/shard) and the
   skewed workload generator (Dds_workload.Skew): routing conservation
   (every key owns exactly one shard and the per-shard op counts sum to
   the plan), determinism under reseeding (placement never moves, only
   traffic), span-id disjointness, tagged trace round-trips, and a
   small end-to-end store that must audit REGULAR per shard. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
open Dds_workload
module Shard = Dds_shard.Shard
module D = Deployment.Make (Sync_register)
module Sh = Shard.Make (D)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int

let base_config ?(seed = 7) ?(churn = 0.0) ?(events = false) () =
  {
    (Deployment.default_config ~seed ~n:8 ~delay:(Delay.synchronous ~delta:3)
       ~churn_rate:churn)
    with
    Deployment.events_enabled = events;
  }

let make_store ?(shards = 4) ?(keys = 64) ?seed ?churn ?events () =
  Sh.create
    { Shard.shards; keys; base = base_config ?seed ?churn ?events () }
    (Sync_register.default_params ~delta:3)

let plan ?(keys = 64) ?(s = 1.0) ?(seed = 11) ?(until = 300) ?(read_rate = 1.0)
    ?(write_every = 10) ?storm ?(rotate_every = 0) () =
  Skew.plan ~rng:(Rng.create ~seed)
    { (Skew.default ~keys ~s ~until:(time until)) with
      Skew.read_rate; write_every; storm; rotate_every }

(* ------------------------------------------------------------------ *)
(* qcheck properties: routing *)

(* Every key routes to exactly one shard, inside [0, shards). *)
let prop_route_in_range =
  QCheck2.Test.make ~name:"route lands in [0, shards)" ~count:500
    QCheck2.Gen.(pair (int_range 1 64) int)
    (fun (shards, key) ->
      let s = Shard.route ~shards ~key in
      0 <= s && s < shards)

(* Placement is a pure function of the key: the same key asked twice,
   or asked through stores built from different seeds, lands on the
   same shard (reseeding moves the traffic, never the placement). *)
let prop_route_deterministic =
  QCheck2.Test.make ~name:"routing is seed-independent and repeatable" ~count:200
    QCheck2.Gen.(triple (int_range 1 32) int (int_range 0 10_000))
    (fun (shards, key, _seed) ->
      Shard.route ~shards ~key = Shard.route ~shards ~key)

(* Conservation through a store: the per-shard scheduled counts sum to
   the generator's total, i.e. hashing partitions the plan, never
   duplicating or dropping an op. *)
let prop_counts_conserve =
  QCheck2.Test.make ~name:"per-shard op counts sum to the plan total" ~count:25
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 128) (int_range 0 10_000))
    (fun (shards, keys, seed) ->
      let ops = plan ~keys ~seed ~until:120 () in
      let store =
        Sh.create
          { Shard.shards; keys; base = base_config ~seed () }
          (Sync_register.default_params ~delta:3)
      in
      Sh.load store ops;
      let per_shard = List.map (fun r -> r.Shard.sr_scheduled) (Sh.reports store) in
      List.fold_left ( + ) 0 per_shard = List.length ops
      && Sh.scheduled store = List.length ops)

(* The issue-time invariant: scheduled = issued + skipped, per shard
   and in total, even under churn. *)
let prop_issue_conserves =
  QCheck2.Test.make ~name:"scheduled = issued + skipped under churn" ~count:10
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 10_000))
    (fun (shards, seed) ->
      let ops = plan ~seed ~until:200 () in
      let store =
        Sh.create
          { Shard.shards; keys = 64; base = base_config ~seed ~churn:0.03 () }
          (Sync_register.default_params ~delta:3)
      in
      Sh.start_churn store ~until:(time 200);
      Sh.load store ops;
      Sh.run_until store (time 260);
      List.for_all
        (fun r -> r.Shard.sr_scheduled = r.Shard.sr_issued + r.Shard.sr_skipped)
        (Sh.reports store)
      && Sh.scheduled store = Sh.issued store + Sh.skipped store)

(* ------------------------------------------------------------------ *)
(* qcheck properties: the skewed generator *)

(* The plan is a pure function of (seed, config). *)
let prop_plan_deterministic =
  QCheck2.Test.make ~name:"plan is a pure function of seed and config" ~count:25
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 64))
    (fun (seed, keys) -> plan ~keys ~seed () = plan ~keys ~seed ())

(* Every drawn key is in range, and the histogram totals the plan. *)
let prop_plan_keys_in_range =
  QCheck2.Test.make ~name:"plan keys are in [0, keys) and histogram totals" ~count:25
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 64))
    (fun (seed, keys) ->
      let ops = plan ~keys ~seed () in
      let hist = Skew.key_histogram ops ~keys in
      List.for_all (fun (o : Shard.op) -> 0 <= o.Shard.key && o.Shard.key < keys) ops
      && Array.fold_left ( + ) 0 hist = List.length ops)

(* ------------------------------------------------------------------ *)
(* Unit: skew shape, storms, rotation *)

let test_zipf_skew () =
  (* At s = 1.2 the most popular key dwarfs the median; at s = 0 the
     histogram is flat-ish. Compare top-1 shares. *)
  let share s =
    let ops = plan ~keys:32 ~s ~seed:5 ~until:2000 () in
    let hist = Skew.key_histogram ops ~keys:32 in
    let top = Array.fold_left Stdlib.max 0 hist in
    float_of_int top /. float_of_int (List.length ops)
  in
  let flat = share 0.0 and skewed = share 1.2 in
  check_bool "uniform top-1 share small" true (flat < 0.10);
  check_bool "zipf concentrates" true (skewed > 2.0 *. flat)

let test_storm_redirects () =
  let storm =
    { Skew.storm_start = time 1; storm_until = time 500; storm_bias = 0.9 }
  in
  let ops = plan ~keys:64 ~s:0.0 ~seed:5 ~until:499 ~storm () in
  let hist = Skew.key_histogram ops ~keys:64 in
  let top = Array.fold_left Stdlib.max 0 hist in
  (* 90% of a uniform stream redirected to one key: its share must be
     dominant (loose bound, the rest is uniform noise). *)
  check_bool "storm concentrates on the hot key" true
    (float_of_int top /. float_of_int (List.length ops) > 0.6)

let test_rotation_moves_hot_key () =
  let hot until rotate_every =
    let ops = plan ~keys:16 ~s:2.0 ~seed:5 ~until ~rotate_every () in
    let hist = Skew.key_histogram ops ~keys:16 in
    let hot = ref 0 in
    Array.iteri (fun k n -> if n > hist.(!hot) then hot := k) hist;
    !hot
  in
  (* Without rotation the hot key of the first half is the hot key of
     the whole run; with aggressive rotation the mass spreads, so the
     top key's identity (almost surely) differs from the static one. *)
  let static = hot 400 0 in
  let rotated =
    let ops = plan ~keys:16 ~s:2.0 ~seed:5 ~until:400 ~rotate_every:25 () in
    let hist = Skew.key_histogram ops ~keys:16 in
    float_of_int (Array.fold_left Stdlib.max 0 hist)
    /. float_of_int (List.length ops)
  in
  let static_share =
    let ops = plan ~keys:16 ~s:2.0 ~seed:5 ~until:400 () in
    let hist = Skew.key_histogram ops ~keys:16 in
    float_of_int hist.(static) /. float_of_int (List.length ops)
  in
  check_bool "rotation flattens the histogram" true (rotated < static_share)

(* ------------------------------------------------------------------ *)
(* Unit: the store end to end *)

let test_store_regular_per_shard () =
  let store = make_store ~shards:4 ~churn:0.02 () in
  Sh.start_churn store ~until:(time 300);
  Sh.load store (plan ());
  Sh.run_until store (time 360);
  check_int "4 shard reports" 4 (List.length (Sh.reports store));
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "shard %d regular" r.Shard.sr_shard)
        true
        (Regularity.is_ok r.Shard.sr_regularity))
    (Sh.reports store);
  check_bool "store regular" true (Sh.regular store);
  check_bool "work was issued" true (Sh.issued store > 0)

let test_store_same_plan_any_shard_count () =
  (* The identical plan re-partitions across shard counts: total
     scheduled is invariant. *)
  let ops = plan () in
  let totals =
    List.map
      (fun shards ->
        let store = make_store ~shards () in
        Sh.load store ops;
        Sh.scheduled store)
      [ 1; 2; 4; 8 ]
  in
  List.iter (fun t -> check_int "total invariant" (List.length ops) t) totals

let test_facade_routes () =
  let store = make_store ~shards:4 ~keys:64 () in
  (* The facade must agree with the pure router for every key. *)
  for key = 0 to 63 do
    check_int
      (Printf.sprintf "facade route key %d" key)
      (Shard.route ~shards:4 ~key) (Sh.route_key store key)
  done

let test_span_bases_disjoint () =
  let store = make_store ~shards:3 ~events:true () in
  Sh.load store (plan ~until:100 ());
  Sh.run_until store (time 160);
  (* Span ids from different shards must live in disjoint 1M bands. *)
  let tagged = Sh.tagged_events store in
  check_bool "events recorded" true (tagged <> []);
  List.iter
    (fun ((shard, ev) : int option * Event.stamped) ->
      let s = Option.get shard in
      match ev.Event.ev with
      | Event.Op_start { span; _ }
      | Event.Op_phase { span; _ }
      | Event.Op_end { span; _ }
      | Event.Quorum_progress { span; _ } ->
        check_int (Printf.sprintf "span %d in shard %d band" span s) s (span / 1_000_000)
      | _ -> ())
    tagged

let test_tagged_export_roundtrip () =
  let store = make_store ~shards:3 ~events:true () in
  Sh.load store (plan ~until:100 ());
  Sh.run_until store (time 160);
  let tagged = Sh.tagged_events store in
  let text = Export.jsonl_of_tagged_events tagged in
  (match Export.tagged_events_of_jsonl text with
  | Error e -> Alcotest.failf "tagged parse: %s" e
  | Ok back ->
    check_int "round-trip count" (List.length tagged) (List.length back);
    List.iter2
      (fun (s1, (e1 : Event.stamped)) (s2, (e2 : Event.stamped)) ->
        check_bool "tag preserved" true (s1 = s2);
        check_bool "timestamp preserved" true (Time.compare e1.Event.at e2.Event.at = 0))
      tagged back);
  (* A tagged trace still parses through the untagged reader (the tag
     is an extra field every existing consumer ignores). *)
  match Export.events_of_jsonl text with
  | Error e -> Alcotest.failf "untagged parse of tagged trace: %s" e
  | Ok evs -> check_int "untagged reader sees every event" (List.length tagged) (List.length evs)

let test_shard_table_columns () =
  let rows =
    Sweep.shard_scaling ~protocol:"sync" ~n:6 ~delta:3 ~shards:[ 1; 2 ] ~skews:[ 1.0 ]
      ~churns:[ 0.0 ] ~keys:32 ~read_rate:1.0 ~write_every:10 ~horizon:100 ~seed:3 ()
  in
  let t = Tables.shard_scaling ~protocol:"sync" ~n:6 ~keys:32 ~horizon:100 rows in
  let w = List.length t.Report.headers in
  check_bool "rows match header width" true
    (t.Report.rows <> [] && List.for_all (fun r -> List.length r = w) t.Report.rows);
  (* Hashing spreads the plan: with 2 shards nobody owns everything. *)
  match rows with
  | [ one; two ] ->
    check_bool "1 shard owns all" true (one.Sweep.sh_hot_frac = 1.0);
    check_bool "2 shards split" true (two.Sweep.sh_hot_frac < 1.0);
    check_bool "both regular" true (one.Sweep.sh_regular && two.Sweep.sh_regular)
  | _ -> Alcotest.fail "expected two rows"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_shard"
    [
      qsuite "routing properties"
        [ prop_route_in_range; prop_route_deterministic; prop_counts_conserve;
          prop_issue_conserves ];
      qsuite "skew properties" [ prop_plan_deterministic; prop_plan_keys_in_range ];
      ( "skew",
        [
          Alcotest.test_case "zipf concentrates" `Quick test_zipf_skew;
          Alcotest.test_case "storm redirects" `Quick test_storm_redirects;
          Alcotest.test_case "rotation moves the hot key" `Quick test_rotation_moves_hot_key;
        ] );
      ( "store",
        [
          Alcotest.test_case "regular per shard under churn" `Quick
            test_store_regular_per_shard;
          Alcotest.test_case "plan invariant across shard counts" `Quick
            test_store_same_plan_any_shard_count;
          Alcotest.test_case "facade agrees with the router" `Quick test_facade_routes;
          Alcotest.test_case "span bases disjoint" `Quick test_span_bases_disjoint;
          Alcotest.test_case "tagged export round-trip" `Quick test_tagged_export_roundtrip;
          Alcotest.test_case "E25 table columns" `Quick test_shard_table_columns;
        ] );
    ]
