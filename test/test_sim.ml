(* Unit and property tests for the simulation substrate: Time, Rng,
   Heap, Scheduler, Stats, Trace, Metrics. *)

open Dds_sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_basics () =
  check_int "zero" 0 (Time.to_int Time.zero);
  check_int "of_int round trip" 42 (Time.to_int (Time.of_int 42));
  check_int "add" 7 (Time.to_int (Time.add (Time.of_int 3) 4));
  check_int "diff" 4 (Time.diff (Time.of_int 7) (Time.of_int 3));
  check_int "negative diff" (-4) (Time.diff (Time.of_int 3) (Time.of_int 7));
  check_bool "lt" true Time.(Time.of_int 1 < Time.of_int 2);
  check_bool "le eq" true Time.(Time.of_int 2 <= Time.of_int 2);
  check_bool "gt" true Time.(Time.of_int 3 > Time.of_int 2);
  check_int "min" 1 (Time.to_int (Time.min (Time.of_int 1) (Time.of_int 2)));
  check_int "max" 2 (Time.to_int (Time.max (Time.of_int 1) (Time.of_int 2)))

let test_time_invalid () =
  Alcotest.check_raises "negative of_int" (Invalid_argument "Time.of_int: negative time")
    (fun () -> ignore (Time.of_int (-1)));
  Alcotest.check_raises "add into negative"
    (Invalid_argument "Time.add: resulting time is negative") (fun () ->
      ignore (Time.add (Time.of_int 1) (-5)))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1234 and b = Rng.create ~seed:1234 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let g = Rng.create ~seed:99 in
  for _ = 1 to 1000 do
    let x = Rng.int g 17 in
    check_bool "in [0,17)" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_in_range g ~lo:5 ~hi:9 in
    check_bool "in [5,9]" true (x >= 5 && x <= 9)
  done

let test_rng_int_coverage () =
  (* Every residue of a small bound shows up in a modest number of draws. *)
  let g = Rng.create ~seed:7 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int g 5) <- true
  done;
  Array.iteri (fun i b -> check_bool (Printf.sprintf "residue %d seen" i) true b) seen

let test_rng_invalid () =
  let g = Rng.create ~seed:0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in_range: hi < lo") (fun () ->
      ignore (Rng.int_in_range g ~lo:3 ~hi:2));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick g [||]))

let test_rng_split_independence () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  (* The child stream must not mirror the parent stream. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 parent) (Rng.bits64 child) then incr same
  done;
  check_bool "split independent" true (!same < 4)

let test_rng_shuffle_permutes () =
  let g = Rng.create ~seed:11 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle_in_place g arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.insert h) [ 5; 1; 4; 1; 3; 9; 0 ];
  check_int "length" 7 (Heap.length h);
  check (Alcotest.option Alcotest.int) "peek" (Some 0) (Heap.peek h);
  let drained = List.init 7 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 1; 3; 4; 5; 9 ] drained;
  check_bool "empty after drain" true (Heap.is_empty h);
  check (Alcotest.option Alcotest.int) "pop empty" None (Heap.pop h)

let test_heap_to_sorted_list () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.insert h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted view" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  check_int "non destructive" 3 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.insert h) [ 1; 2 ];
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let prop_heap_model =
  QCheck2.Test.make ~name:"heap drains like a sorted list" ~count:300
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.insert h) xs;
      let drained =
        let rec go acc = match Heap.pop h with None -> List.rev acc | Some x -> go (x :: acc) in
        go []
      in
      drained = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_scheduler_order () =
  let s = Scheduler.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Scheduler.schedule_at s (Time.of_int 10) (note "c"));
  ignore (Scheduler.schedule_at s (Time.of_int 5) (note "a"));
  ignore (Scheduler.schedule_at s (Time.of_int 7) (note "b"));
  Scheduler.run s ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_int "clock at last event" 10 (Time.to_int (Scheduler.now s))

let test_scheduler_fifo_ties () =
  let s = Scheduler.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Scheduler.schedule_at s (Time.of_int 3) (note "first"));
  ignore (Scheduler.schedule_at s (Time.of_int 3) (note "second"));
  ignore (Scheduler.schedule_at s (Time.of_int 3) (note "third"));
  Scheduler.run s ();
  Alcotest.(check (list string)) "fifo ties" [ "first"; "second"; "third" ] (List.rev !log)

let test_scheduler_cancel () =
  let s = Scheduler.create () in
  let fired = ref false in
  let tok = Scheduler.schedule_at s (Time.of_int 2) (fun () -> fired := true) in
  Scheduler.cancel s tok;
  Scheduler.run s ();
  check_bool "cancelled event silent" false !fired;
  (* Cancelling twice is harmless. *)
  Scheduler.cancel s tok

let test_scheduler_past_rejected () =
  let s = Scheduler.create () in
  ignore (Scheduler.schedule_at s (Time.of_int 5) (fun () -> ()));
  Scheduler.run s ();
  check_bool "raises on past" true
    (try
       ignore (Scheduler.schedule_at s (Time.of_int 1) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_scheduler_nested_scheduling () =
  let s = Scheduler.create () in
  let log = ref [] in
  ignore
    (Scheduler.schedule_at s (Time.of_int 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Scheduler.schedule_after s 0 (fun () -> log := "same-tick" :: !log));
         ignore (Scheduler.schedule_after s 2 (fun () -> log := "later" :: !log))));
  Scheduler.run s ();
  Alcotest.(check (list string))
    "nested order" [ "outer"; "same-tick"; "later" ] (List.rev !log)

let test_scheduler_run_until () =
  let s = Scheduler.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Scheduler.schedule_at s (Time.of_int t) (fun () -> fired := t :: !fired)))
    [ 1; 5; 10; 15 ];
  Scheduler.run_until s (Time.of_int 10);
  Alcotest.(check (list int)) "within horizon" [ 1; 5; 10 ] (List.rev !fired);
  check_int "clock = horizon" 10 (Time.to_int (Scheduler.now s));
  Scheduler.run_until s (Time.of_int 20);
  Alcotest.(check (list int)) "rest fired" [ 1; 5; 10; 15 ] (List.rev !fired);
  check_int "clock pushed to horizon" 20 (Time.to_int (Scheduler.now s))

let test_scheduler_run_until_cancelled_head () =
  let s = Scheduler.create () in
  let fired = ref false in
  let tok = Scheduler.schedule_at s (Time.of_int 2) (fun () -> ()) in
  ignore (Scheduler.schedule_at s (Time.of_int 50) (fun () -> fired := true));
  Scheduler.cancel s tok;
  Scheduler.run_until s (Time.of_int 10);
  check_bool "beyond-horizon event did not fire" false !fired

let test_scheduler_max_events () =
  let s = Scheduler.create () in
  let count = ref 0 in
  let rec reschedule () =
    incr count;
    ignore (Scheduler.schedule_after s 1 reschedule)
  in
  ignore (Scheduler.schedule_after s 1 reschedule);
  Scheduler.run s ~max_events:25 ();
  check_int "bounded" 25 !count;
  check_int "events_fired" 25 (Scheduler.events_fired s)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basics () =
  let s = Stats.create () in
  List.iter (Stats.add_int s) [ 1; 2; 3; 4; 5 ];
  check_int "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.max_value s);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.median s);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "total" 15.0 (Stats.total s)

let test_stats_empty () =
  let s = Stats.create () in
  check_bool "mean nan" true (Float.is_nan (Stats.mean s));
  check_bool "median nan" true (Float.is_nan (Stats.median s));
  check_int "count 0" 0 (Stats.count s)

let test_stats_percentile_rank () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add_int s i
  done;
  check (Alcotest.float 1e-9) "p1" 1.0 (Stats.percentile s 1.0);
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile s 50.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile s 99.0)

let test_stats_stddev_and_samples () =
  let s = Stats.create () in
  List.iter (Stats.add_int s) [ 2; 4; 4; 4; 5; 5; 7; 9 ];
  check (Alcotest.float 1e-9) "population stddev" 2.0 (Stats.stddev s);
  Alcotest.(check (array (float 1e-9)))
    "samples keep insertion order"
    [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]
    (Stats.samples s);
  check_bool "invalid percentile" true
    (try
       ignore (Stats.percentile s 101.0);
       false
     with Invalid_argument _ -> true)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add_int a) [ 1; 2 ];
  List.iter (Stats.add_int b) [ 3; 4 ];
  let m = Stats.merge a b in
  check_int "merged count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "merged mean" 2.5 (Stats.mean m)

let prop_stats_mean_bounds =
  QCheck2.Test.make ~name:"mean lies within [min,max]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-9 && m <= Stats.max_value s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Trace / Metrics *)

let test_trace_roundtrip () =
  let tr = Trace.create ~enabled:true () in
  Trace.record tr ~time:(Time.of_int 1) ~topic:"a" "one";
  Trace.recordf tr ~time:(Time.of_int 2) ~topic:"b" "two=%d" 2;
  check_int "length" 2 (Trace.length tr);
  (match Trace.entries tr with
  | [ e1; e2 ] ->
    check Alcotest.string "topic order" "a" e1.Trace.topic;
    check Alcotest.string "formatted" "two=2" e2.Trace.detail
  | _ -> Alcotest.fail "expected two entries");
  check_int "find" 1 (List.length (Trace.find tr ~topic:"a"));
  Trace.clear tr;
  check_int "cleared" 0 (Trace.length tr)

let test_trace_disabled () =
  let tr = Trace.create ~enabled:false () in
  Trace.record tr ~time:Time.zero ~topic:"x" "dropped";
  Trace.recordf tr ~time:Time.zero ~topic:"x" "dropped %d" 1;
  check_int "nothing recorded" 0 (Trace.length tr)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m "a";
  Metrics.add m "b" 5;
  check_int "a" 2 (Metrics.get m "a");
  check_int "b" 5 (Metrics.get m "b");
  check_int "absent" 0 (Metrics.get m "zzz");
  Alcotest.(check (list (pair string int))) "to_list sorted" [ ("a", 2); ("b", 5) ]
    (Metrics.to_list m);
  Metrics.reset m;
  check_int "reset" 0 (Metrics.get m "a")

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_bucket_edges () =
  let h = Histogram.create ~edges:[| 1.0; 2.0; 4.0 |] in
  (* A sample exactly on an edge lands in that edge's bucket. *)
  Histogram.add h 1.0;
  Histogram.add h 2.0;
  Histogram.add h 4.0;
  Histogram.add h 0.5;
  Histogram.add h 3.0;
  Histogram.add h 100.0;
  Alcotest.(check (array int)) "bucket layout" [| 2; 1; 2; 1 |] (Histogram.counts h);
  check_int "count" 6 (Histogram.count h);
  check (Alcotest.float 1e-9) "min exact" 0.5 (Histogram.min_value h);
  check (Alcotest.float 1e-9) "max exact" 100.0 (Histogram.max_value h)

let test_histogram_percentile () =
  let h = Histogram.create ~edges:[| 1.0; 2.0; 4.0; 8.0 |] in
  List.iter (Histogram.add_int h) [ 1; 1; 1; 1; 2; 2; 3; 4; 5; 16 ];
  (* Percentiles are quantized up to the containing bucket's edge. *)
  check (Alcotest.float 1e-9) "p50 quantized" 2.0 (Histogram.percentile h 50.0);
  check (Alcotest.float 1e-9) "p90 quantized" 8.0 (Histogram.percentile h 90.0);
  (* Overflow-bucket samples report the exact maximum instead. *)
  check (Alcotest.float 1e-9) "p100 overflow exact" 16.0 (Histogram.percentile h 100.0);
  check (Alcotest.float 1e-9) "mean exact" 3.6 (Histogram.mean h)

let test_histogram_generators_and_merge () =
  let lin = Histogram.linear ~lo:10.0 ~step:5.0 ~buckets:3 in
  Alcotest.(check (array (float 1e-9))) "linear edges" [| 10.0; 15.0; 20.0 |]
    (Histogram.edges lin);
  let exp = Histogram.exponential ~lo:1.0 ~factor:2.0 ~buckets:4 in
  Alcotest.(check (array (float 1e-9))) "exponential edges" [| 1.0; 2.0; 4.0; 8.0 |]
    (Histogram.edges exp);
  let a = Histogram.create ~edges:[| 1.0; 2.0 |] in
  let b = Histogram.create ~edges:[| 1.0; 2.0 |] in
  Histogram.add a 0.5;
  Histogram.add b 1.5;
  Histogram.add b 9.0;
  let m = Histogram.merge a b in
  check_int "merged count" 3 (Histogram.count m);
  Alcotest.(check (array int)) "merged buckets" [| 1; 1; 1 |] (Histogram.counts m);
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Histogram.merge: bucket layouts differ") (fun () ->
      ignore (Histogram.merge a (Histogram.create ~edges:[| 3.0 |])))

let test_histogram_invalid () =
  Alcotest.check_raises "empty edges"
    (Invalid_argument "Histogram.create: no bucket edges") (fun () ->
      ignore (Histogram.create ~edges:[||]));
  Alcotest.check_raises "non-increasing edges"
    (Invalid_argument "Histogram.create: edges must be strictly increasing") (fun () ->
      ignore (Histogram.create ~edges:[| 1.0; 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.Float 2.5);
        ("c", Json.String "x\"y\n\tz");
        ("d", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Int (-3) ]) ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v' -> check_bool "roundtrip" true (v = v')

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2"

let test_json_escapes () =
  match Json.parse {|"Aé\t"|} with
  | Ok (Json.String s) -> check Alcotest.string "unicode escapes" "A\xc3\xa9\t" s
  | Ok _ | Error _ -> Alcotest.fail "expected a string"

(* ------------------------------------------------------------------ *)
(* Event sink *)

let test_event_sink_records () =
  let s = Event.create ~enabled:true () in
  Event.emit s ~at:Time.zero (Event.Node_join { node = 1 });
  Event.emit s ~at:(Time.of_int 3) (Event.Gst_reached);
  check_int "two events" 2 (Event.length s);
  (match Event.events s with
  | [ { Event.at = t0; ev = Event.Node_join { node = 1 } }; { Event.at = t3; _ } ] ->
    check_int "first at 0" 0 (Time.to_int t0);
    check_int "second at 3" 3 (Time.to_int t3)
  | _ -> Alcotest.fail "unexpected event list");
  Event.clear s;
  check_int "cleared" 0 (Event.length s)

let test_event_sink_disabled () =
  let s = Event.create ~enabled:false () in
  for i = 0 to 99 do
    Event.emit s ~at:Time.zero (Event.Node_join { node = i })
  done;
  check_int "disabled sink records nothing" 0 (Event.length s);
  (* Span ids still advance so code paths stay identical either way. *)
  check_int "span 0" 0 (Event.fresh_span s);
  check_int "span 1" 1 (Event.fresh_span s)

let test_event_unclosed_spans () =
  let s = Event.create ~enabled:true () in
  let at = Time.zero in
  Event.emit s ~at (Event.Op_start { span = 0; node = 1; op = Event.Read; value = None });
  Event.emit s ~at (Event.Op_start { span = 1; node = 2; op = Event.Write; value = None });
  Event.emit s ~at
    (Event.Op_end
       { span = 0; node = 1; op = Event.Read; outcome = Event.Completed; value = None });
  Event.emit s ~at (Event.Op_start { span = 2; node = 3; op = Event.Join; value = None });
  Alcotest.(check (list int)) "spans 1 and 2 open" [ 1; 2 ]
    (Event.unclosed_spans (Event.events s))

(* ------------------------------------------------------------------ *)
(* Metrics gauges / histograms / snapshot *)

let test_metrics_gauges_histograms () =
  let m = Metrics.create () in
  Metrics.set_gauge m "g" 1.0;
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "last write wins" (Some 2.5) (Metrics.gauge m "g");
  Alcotest.(check (option (float 1e-9))) "absent gauge" None (Metrics.gauge m "zzz");
  let edges = [| 1.0; 2.0 |] in
  Metrics.observe m "h" ~edges 0.5;
  Metrics.observe m "h" ~edges 5.0;
  let h = Metrics.histogram m "h" ~edges in
  check_int "histogram fed" 2 (Histogram.count h);
  let snap = Metrics.snapshot m in
  check_int "snapshot histograms" 1 (List.length snap.Metrics.histogram_values);
  let _, hs = List.hd snap.Metrics.histogram_values in
  check_int "snapshot count" 2 hs.Metrics.count;
  check (Alcotest.float 1e-9) "snapshot sum" 5.5 hs.Metrics.sum;
  Metrics.reset m;
  check_int "reset drops histograms" 0 (List.length (Metrics.histograms m));
  Alcotest.(check (option (float 1e-9))) "reset drops gauges" None (Metrics.gauge m "g")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_sim"
    [
      ( "time",
        [
          Alcotest.test_case "basics" `Quick test_time_basics;
          Alcotest.test_case "invalid" `Quick test_time_invalid;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_rng_int_coverage;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "sorted view" `Quick test_heap_to_sorted_list;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      qsuite "heap-props" [ prop_heap_model ];
      ( "scheduler",
        [
          Alcotest.test_case "time order" `Quick test_scheduler_order;
          Alcotest.test_case "fifo ties" `Quick test_scheduler_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_scheduler_cancel;
          Alcotest.test_case "past rejected" `Quick test_scheduler_past_rejected;
          Alcotest.test_case "nested scheduling" `Quick test_scheduler_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_scheduler_run_until;
          Alcotest.test_case "run_until cancelled head" `Quick
            test_scheduler_run_until_cancelled_head;
          Alcotest.test_case "max events" `Quick test_scheduler_max_events;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile_rank;
          Alcotest.test_case "stddev and samples" `Quick test_stats_stddev_and_samples;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounds ];
      ( "trace-metrics",
        [
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "gauges and histograms" `Quick test_metrics_gauges_histograms;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentile;
          Alcotest.test_case "generators and merge" `Quick
            test_histogram_generators_and_merge;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
        ] );
      ( "event",
        [
          Alcotest.test_case "records" `Quick test_event_sink_records;
          Alcotest.test_case "disabled" `Quick test_event_sink_disabled;
          Alcotest.test_case "unclosed spans" `Quick test_event_unclosed_spans;
        ] );
    ]
