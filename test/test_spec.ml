(* Tests for the specification substrate: Value, History, Regularity,
   Atomicity (new/old inversions) and Staleness — exercised on
   hand-built histories whose verdicts are known. *)

open Dds_sim
open Dds_net
open Dds_spec

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int
let pid = Pid.of_int
let v ~data ~sn = Value.make ~data ~sn

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_bottom () =
  check_bool "is_bottom" true (Value.is_bottom Value.bottom);
  check_bool "real value is not bottom" false (Value.is_bottom (Value.initial 0));
  check_bool "bottom loses to initial" true
    (Value.equal (Value.newer Value.bottom (Value.initial 0)) (Value.initial 0));
  check_bool "bottom loses in newest" true
    (match Value.newest [ Value.bottom; v ~data:5 ~sn:2 ] with
    | Some w -> w.Value.sn = 2
    | None -> false);
  check Alcotest.string "bottom prints as _|_" "_|_"
    (Format.asprintf "%a" Value.pp Value.bottom)

let test_value_basics () =
  check_int "initial sn" 0 (Value.initial 7).Value.sn;
  check_int "initial data" 7 (Value.initial 7).Value.data;
  let a = v ~data:1 ~sn:1 and b = v ~data:2 ~sn:2 in
  check_bool "newer picks higher sn" true (Value.equal (Value.newer a b) b);
  check_bool "newer keeps first on tie" true
    (Value.equal (Value.newer a (v ~data:9 ~sn:1)) a);
  check_bool "newest of list" true
    (Value.equal (Option.get (Value.newest [ a; b; v ~data:0 ~sn:0 ])) b);
  check_bool "newest empty" true (Value.newest [] = None);
  check_bool "same_data ignores sn" true (Value.same_data a (v ~data:1 ~sn:99));
  check_bool "negative sn rejected" true
    (try
       ignore (v ~data:0 ~sn:(-1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* History mechanics *)

let test_history_read_roundtrip () =
  let h = History.create ~initial:(Value.initial 0) in
  let id = History.begin_read h (pid 1) ~now:(time 3) in
  check_int "pending" 1 (List.length (History.pending h));
  History.end_read h id ~now:(time 5) (v ~data:0 ~sn:0);
  check_int "no longer pending" 0 (List.length (History.pending h));
  match History.completed_reads h with
  | [ op ] ->
    check_int "invoked" 3 (Time.to_int op.History.invoked);
    check Alcotest.(option int) "responded" (Some 5)
      (Option.map Time.to_int op.History.responded)
  | _ -> Alcotest.fail "expected one read"

let test_history_write_patches_value () =
  let h = History.create ~initial:(Value.initial 0) in
  let id = History.begin_write h (pid 0) ~now:(time 1) (v ~data:5 ~sn:1) in
  (* The protocol discovered a higher sn mid-operation. *)
  History.end_write h id ~now:(time 4) (v ~data:5 ~sn:3);
  match History.completed_writes h with
  | [ { History.kind = History.Write value; _ } ] ->
    check_int "patched sn" 3 value.Value.sn
  | _ -> Alcotest.fail "expected one write"

let test_history_abort () =
  let h = History.create ~initial:(Value.initial 0) in
  let id = History.begin_read h (pid 2) ~now:(time 1) in
  History.abort h id;
  check_int "aborted listed" 1 (List.length (History.aborted h));
  check_int "not completed" 0 (List.length (History.completed_reads h));
  check_int "not pending" 0 (List.length (History.pending h));
  check_bool "end after abort rejected" true
    (try
       History.end_read h id ~now:(time 2) (v ~data:0 ~sn:0);
       false
     with Invalid_argument _ -> true)

let test_history_misuse () =
  let h = History.create ~initial:(Value.initial 0) in
  let r = History.begin_read h (pid 0) ~now:(time 0) in
  check_bool "end_write on a read" true
    (try
       History.end_write h r ~now:(time 1) (v ~data:0 ~sn:0);
       false
     with Invalid_argument _ -> true);
  History.end_read h r ~now:(time 1) (v ~data:0 ~sn:0);
  check_bool "double end" true
    (try
       History.end_read h r ~now:(time 2) (v ~data:0 ~sn:0);
       false
     with Invalid_argument _ -> true)

let test_history_ordering_and_counts () =
  let h = History.create ~initial:(Value.initial 0) in
  let w1 = History.begin_write h (pid 0) ~now:(time 1) (v ~data:1 ~sn:1) in
  History.end_write h w1 ~now:(time 2) (v ~data:1 ~sn:1);
  let r1 = History.begin_read h (pid 1) ~now:(time 3) in
  History.end_read h r1 ~now:(time 4) (v ~data:1 ~sn:1);
  let j1 = History.begin_join h (pid 2) ~now:(time 3) in
  History.end_join h j1 ~now:(time 6) (v ~data:1 ~sn:1);
  check_int "count" 3 (History.count h);
  check_int "writes" 1 (List.length (History.completed_writes h));
  check_int "reads" 1 (List.length (History.completed_reads h));
  check_int "joins" 1 (List.length (History.completed_joins h));
  match History.ops h with
  | [ a; b; c ] ->
    check_bool "invocation order" true
      Time.(a.History.invoked <= b.History.invoked && b.History.invoked <= c.History.invoked)
  | _ -> Alcotest.fail "expected three ops"

(* ------------------------------------------------------------------ *)
(* Regularity: hand-built histories *)

(* Builders: a complete write / read in one call. *)
let add_write h ~p ~at ~until ~data ~sn =
  let id = History.begin_write h (pid p) ~now:(time at) (v ~data ~sn) in
  History.end_write h id ~now:(time until) (v ~data ~sn)

let add_read h ~p ~at ~until ~data ~sn =
  let id = History.begin_read h (pid p) ~now:(time at) in
  History.end_read h id ~now:(time until) (v ~data ~sn)

let add_join h ~p ~at ~until ~data ~sn =
  let id = History.begin_join h (pid p) ~now:(time at) in
  History.end_join h id ~now:(time until) (v ~data ~sn)

let test_history_csv_aborted_and_pending () =
  let h = History.create ~initial:(Value.initial 0) in
  let r = History.begin_read h (pid 1) ~now:(time 2) in
  History.abort h r;
  ignore (History.begin_write h (pid 0) ~now:(time 3) (v ~data:9 ~sn:1));
  let lines = String.split_on_char '\n' (String.trim (History.to_csv h)) in
  check_int "header + 2 rows" 3 (List.length lines);
  check_bool "aborted read row flagged" true
    (List.exists (fun l -> l = "0,1,read,,,2,,true") lines);
  check_bool "pending write row has empty response" true
    (List.exists (fun l -> l = "1,0,write,9,1,3,,false") lines)

let test_disseminated_vs_all_writes () =
  let h = History.create ~initial:(Value.initial 0) in
  let w1 = History.begin_write h (pid 0) ~now:(time 1) (v ~data:1 ~sn:1) in
  History.end_write h w1 ~now:(time 2) (v ~data:1 ~sn:1);
  let w2 = History.begin_write h (pid 0) ~now:(time 3) (v ~data:2 ~sn:2) in
  History.abort h w2;
  check_int "all_writes excludes aborted" 1 (List.length (History.all_writes h));
  check_int "disseminated includes aborted" 2 (List.length (History.disseminated_writes h));
  (* A read returning the aborted write's value is tolerated: the
     broadcast may have gone out before the writer left. *)
  add_read h ~p:1 ~at:5 ~until:6 ~data:2 ~sn:2;
  check_bool "aborted write's value allowed" true (Regularity.is_ok (Regularity.check h))

let test_regular_sequential_history () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:3 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:5 ~until:6 ~data:10 ~sn:1;
  add_write h ~p:0 ~at:8 ~until:9 ~data:20 ~sn:2;
  add_read h ~p:1 ~at:10 ~until:11 ~data:20 ~sn:2;
  let r = Regularity.check h in
  check_bool "ok" true (Regularity.is_ok r);
  check_int "reads checked" 2 r.Regularity.checked_reads

let test_read_of_initial_value () =
  let h = History.create ~initial:(Value.initial 0) in
  add_read h ~p:1 ~at:1 ~until:2 ~data:0 ~sn:0;
  check_bool "initial allowed" true (Regularity.is_ok (Regularity.check h))

let test_stale_read_flagged () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:3 ~data:10 ~sn:1;
  (* Read starts after the write completed but returns the initial value. *)
  add_read h ~p:1 ~at:5 ~until:6 ~data:0 ~sn:0;
  let r = Regularity.check h in
  check_int "one violation" 1 (List.length r.Regularity.violations);
  check_bool "not ok" false (Regularity.is_ok r)

let test_concurrent_read_may_return_either () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:5 ~until:10 ~data:10 ~sn:1;
  (* Concurrent with the write: old value fine... *)
  add_read h ~p:1 ~at:6 ~until:7 ~data:0 ~sn:0;
  (* ...new value fine too. *)
  add_read h ~p:2 ~at:6 ~until:8 ~data:10 ~sn:1;
  check_bool "both allowed" true (Regularity.is_ok (Regularity.check h))

let test_skipping_intermediate_write_flagged () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:2 ~data:10 ~sn:1;
  add_write h ~p:0 ~at:4 ~until:5 ~data:20 ~sn:2;
  (* Returns the first write's value after the second completed: stale. *)
  add_read h ~p:1 ~at:7 ~until:8 ~data:10 ~sn:1;
  let r = Regularity.check h in
  check_int "flagged" 1 (List.length r.Regularity.violations)

let test_read_of_pending_write_allowed () =
  let h = History.create ~initial:(Value.initial 0) in
  ignore (History.begin_write h (pid 0) ~now:(time 2) (v ~data:10 ~sn:1));
  (* The write never completes inside the horizon, but its value may
     surface in any read invoked after the write began. *)
  add_read h ~p:1 ~at:5 ~until:6 ~data:10 ~sn:1;
  check_bool "pending write's value allowed" true (Regularity.is_ok (Regularity.check h))

let test_never_written_value_flagged () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:2 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:3 ~until:4 ~data:999 ~sn:7;
  let r = Regularity.check h in
  check_int "phantom value flagged" 1 (List.length r.Regularity.violations)

let test_join_checked_like_read () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:3 ~data:10 ~sn:1;
  add_join h ~p:5 ~at:6 ~until:9 ~data:0 ~sn:0 (* stale adoption *);
  let r = Regularity.check h in
  check_int "join flagged" 1 (List.length r.Regularity.violations);
  check_int "joins checked" 1 r.Regularity.checked_joins;
  let r' = Regularity.check ~include_joins:false h in
  check_int "joins excluded on demand" 0 (List.length r'.Regularity.violations)

let test_overlapping_writes_detected () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:10 ~data:10 ~sn:1;
  add_write h ~p:1 ~at:5 ~until:12 ~data:20 ~sn:2;
  let r = Regularity.check h in
  check_bool "writes not sequential" false r.Regularity.writes_sequential;
  check_bool "not ok" false (Regularity.is_ok r)

let test_duplicate_data_detected () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:2 ~data:0 ~sn:1 (* same datum as initial *);
  let r = Regularity.check h in
  check_bool "distinct_data false" false r.Regularity.distinct_data;
  check_bool "not ok" false (Regularity.is_ok r)

let test_boundary_tie_is_permissive () =
  let h = History.create ~initial:(Value.initial 0) in
  (* Write responds exactly when the read is invoked: under tick
     granularity either order is plausible, so both values pass. *)
  add_write h ~p:0 ~at:1 ~until:5 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:5 ~until:6 ~data:0 ~sn:0;
  add_read h ~p:2 ~at:5 ~until:6 ~data:10 ~sn:1;
  check_bool "both tolerated at the boundary" true (Regularity.is_ok (Regularity.check h))

(* ------------------------------------------------------------------ *)
(* Atomicity: new/old inversions *)

let test_inversion_detected () =
  let h = History.create ~initial:(Value.initial 0) in
  (* The introduction's scenario: r1 gets w2's value, later r2 gets w1's. *)
  add_write h ~p:0 ~at:1 ~until:20 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:2 ~until:3 ~data:10 ~sn:1 (* sees the new value early *);
  add_read h ~p:2 ~at:5 ~until:6 ~data:0 ~sn:0 (* then the old one: inversion *);
  let inv = Atomicity.inversions h in
  check_int "one inversion" 1 (List.length inv);
  (match inv with
  | [ i ] ->
    check_int "first sn" 1 i.Atomicity.first_sn;
    check_int "second sn" 0 i.Atomicity.second_sn
  | _ -> ());
  check_bool "regular yet not atomic" true (Regularity.is_ok (Regularity.check h));
  check_bool "is_atomic false" false (Atomicity.is_atomic h)

let test_no_inversion_on_monotone_reads () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:2 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:3 ~until:4 ~data:10 ~sn:1;
  add_write h ~p:0 ~at:5 ~until:6 ~data:20 ~sn:2;
  add_read h ~p:2 ~at:7 ~until:8 ~data:20 ~sn:2;
  check_int "no inversion" 0 (List.length (Atomicity.inversions h));
  check_bool "atomic" true (Atomicity.is_atomic h)

let test_concurrent_reads_not_inverted () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:10 ~data:10 ~sn:1;
  (* Overlapping reads disagree — allowed, they are concurrent. *)
  add_read h ~p:1 ~at:2 ~until:8 ~data:10 ~sn:1;
  add_read h ~p:2 ~at:3 ~until:9 ~data:0 ~sn:0;
  check_int "concurrent reads never invert" 0 (List.length (Atomicity.inversions h))

(* ------------------------------------------------------------------ *)
(* Staleness *)

let test_staleness_measurement () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:2 ~data:10 ~sn:1;
  add_write h ~p:0 ~at:3 ~until:4 ~data:20 ~sn:2;
  add_write h ~p:0 ~at:5 ~until:6 ~data:30 ~sn:3;
  add_read h ~p:1 ~at:7 ~until:8 ~data:30 ~sn:3 (* fresh *);
  add_read h ~p:2 ~at:9 ~until:10 ~data:10 ~sn:1 (* 2 writes behind *);
  let r = Staleness.measure h in
  check_int "max staleness" 2 r.Staleness.max_staleness;
  check_int "samples" 2 (Stats.count r.Staleness.stats);
  match r.Staleness.per_read with
  | [ (_, s1); (_, s2) ] ->
    check_int "fresh read" 0 s1;
    check_int "stale read" 2 s2
  | _ -> Alcotest.fail "expected two samples"

let test_staleness_empty_history () =
  let h = History.create ~initial:(Value.initial 0) in
  let r = Staleness.measure h in
  check_int "no reads" 0 r.Staleness.max_staleness;
  check_int "no samples" 0 (Stats.count r.Staleness.stats)

(* ------------------------------------------------------------------ *)
(* Brute-force linearizability *)

let test_linearizability_accepts_atomic () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:2 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:3 ~until:4 ~data:10 ~sn:1;
  add_write h ~p:0 ~at:5 ~until:6 ~data:20 ~sn:2;
  add_read h ~p:2 ~at:7 ~until:8 ~data:20 ~sn:2;
  check Alcotest.(option bool) "linearizable" (Some true) (Linearizability.check h)

let test_linearizability_rejects_inversion () =
  let h = History.create ~initial:(Value.initial 0) in
  add_write h ~p:0 ~at:1 ~until:20 ~data:10 ~sn:1;
  add_read h ~p:1 ~at:2 ~until:3 ~data:10 ~sn:1;
  add_read h ~p:2 ~at:5 ~until:6 ~data:0 ~sn:0;
  check Alcotest.(option bool) "inversion not linearizable" (Some false)
    (Linearizability.check h)

let test_linearizability_rejects_phantom () =
  let h = History.create ~initial:(Value.initial 0) in
  add_read h ~p:1 ~at:1 ~until:2 ~data:999 ~sn:9;
  check Alcotest.(option bool) "phantom value" (Some false) (Linearizability.check h)

let test_linearizability_bails_out () =
  let h = History.create ~initial:(Value.initial 0) in
  for i = 1 to 12 do
    add_write h ~p:0 ~at:(2 * i) ~until:((2 * i) + 1) ~data:(100 + i) ~sn:i
  done;
  check Alcotest.(option bool) "too many ops" None (Linearizability.check h);
  let h2 = History.create ~initial:(Value.initial 0) in
  ignore (History.begin_read h2 (pid 0) ~now:(time 1));
  check Alcotest.(option bool) "pending op" None (Linearizability.check h2)

(* The load-bearing cross-check: on random single-writer histories the
   fast verdict (regular and inversion-free) must coincide with the
   brute-force linearizability search. *)
let prop_atomicity_equivalence =
  QCheck2.Test.make
    ~name:"regular + inversion-free <=> linearizable (single writer, small histories)"
    ~count:400
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let h = History.create ~initial:(Value.initial 0) in
      let clock = ref 1 in
      let writes = ref [ Value.initial 0 ] (* newest first *) in
      let n_ops = 2 + Rng.int rng 5 in
      let next_sn = ref 0 in
      for _ = 1 to n_ops do
        let start = !clock + Rng.int rng 3 in
        let len = 1 + Rng.int rng 4 in
        if Rng.int rng 100 < 40 then begin
          (* A write with fresh data; writes never overlap. *)
          incr next_sn;
          let sn = !next_sn in
          add_write h ~p:0 ~at:start ~until:(start + len) ~data:(100 + sn) ~sn;
          writes := v ~data:(100 + sn) ~sn :: !writes;
          clock := start + len + Rng.int rng 2
        end
        else begin
          (* A read returning some previously written (or future-ish)
             value — sometimes legal, sometimes not. *)
          let candidates = Array.of_list !writes in
          let value = Rng.pick rng candidates in
          let reader = 1 + Rng.int rng 3 in
          add_read h ~p:reader ~at:start ~until:(start + len) ~data:value.Value.data
            ~sn:value.Value.sn;
          (* Reads may overlap whatever comes next. *)
          clock := start + Rng.int rng (len + 2)
        end
      done;
      let fast =
        Regularity.is_ok (Regularity.check ~include_joins:false h)
        && Atomicity.inversions h = []
      in
      match Linearizability.check h with
      | Some brute -> brute = fast
      | None -> true (* ungeneratable here, but be safe *))

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Random sequential (non-overlapping, correctly-read) histories are
   always regular and atomic: generate a sequence of writes each
   followed by reads of that write's value. *)
let prop_sequential_histories_regular =
  QCheck2.Test.make ~name:"sequential well-behaved histories pass both checkers" ~count:200
    QCheck2.Gen.(list_size (int_range 0 20) (int_range 0 3))
    (fun reads_per_write ->
      let h = History.create ~initial:(Value.initial 0) in
      let clock = ref 1 in
      let current = ref (Value.initial 0) in
      List.iteri
        (fun i reads ->
          let sn = i + 1 in
          let data = (1000 * sn) + 1 in
          add_write h ~p:0 ~at:!clock ~until:(!clock + 2) ~data ~sn;
          clock := !clock + 3;
          current := v ~data ~sn;
          for _ = 1 to reads do
            add_read h ~p:1 ~at:!clock ~until:(!clock + 1) ~data:(!current).Value.data
              ~sn:(!current).Value.sn;
            clock := !clock + 2
          done)
        reads_per_write;
      Regularity.is_ok (Regularity.check h) && Atomicity.inversions h = [])

(* Reads that return an arbitrary *older-than-allowed* completed write
   are always flagged. *)
let prop_stale_reads_flagged =
  QCheck2.Test.make ~name:"reads of superseded values are always flagged" ~count:200
    QCheck2.Gen.(pair (int_range 2 15) (int_range 0 10_000))
    (fun (n_writes, seed) ->
      let rng = Rng.create ~seed in
      let h = History.create ~initial:(Value.initial 0) in
      let clock = ref 1 in
      for sn = 1 to n_writes do
        add_write h ~p:0 ~at:!clock ~until:(!clock + 1) ~data:(100 + sn) ~sn;
        clock := !clock + 2
      done;
      (* Read an old value strictly after every write completed. *)
      let stale_sn = 1 + Rng.int rng (n_writes - 1) in
      add_read h ~p:1 ~at:(!clock + 1) ~until:(!clock + 2) ~data:(100 + stale_sn)
        ~sn:stale_sn;
      let r = Regularity.check h in
      List.length r.Regularity.violations = 1)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dds_spec"
    [
      ( "value",
        [
          Alcotest.test_case "basics" `Quick test_value_basics;
          Alcotest.test_case "bottom" `Quick test_value_bottom;
        ] );
      ( "history",
        [
          Alcotest.test_case "read roundtrip" `Quick test_history_read_roundtrip;
          Alcotest.test_case "write patches value" `Quick test_history_write_patches_value;
          Alcotest.test_case "abort" `Quick test_history_abort;
          Alcotest.test_case "misuse" `Quick test_history_misuse;
          Alcotest.test_case "ordering and counts" `Quick test_history_ordering_and_counts;
          Alcotest.test_case "csv aborted and pending" `Quick
            test_history_csv_aborted_and_pending;
          Alcotest.test_case "disseminated vs all writes" `Quick
            test_disseminated_vs_all_writes;
        ] );
      ( "regularity",
        [
          Alcotest.test_case "sequential history" `Quick test_regular_sequential_history;
          Alcotest.test_case "initial value" `Quick test_read_of_initial_value;
          Alcotest.test_case "stale read flagged" `Quick test_stale_read_flagged;
          Alcotest.test_case "concurrent read free" `Quick
            test_concurrent_read_may_return_either;
          Alcotest.test_case "skipped write flagged" `Quick
            test_skipping_intermediate_write_flagged;
          Alcotest.test_case "pending write allowed" `Quick test_read_of_pending_write_allowed;
          Alcotest.test_case "phantom value flagged" `Quick test_never_written_value_flagged;
          Alcotest.test_case "join checked like read" `Quick test_join_checked_like_read;
          Alcotest.test_case "overlapping writes" `Quick test_overlapping_writes_detected;
          Alcotest.test_case "duplicate data" `Quick test_duplicate_data_detected;
          Alcotest.test_case "boundary tie permissive" `Quick test_boundary_tie_is_permissive;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "inversion detected" `Quick test_inversion_detected;
          Alcotest.test_case "monotone reads" `Quick test_no_inversion_on_monotone_reads;
          Alcotest.test_case "concurrent reads" `Quick test_concurrent_reads_not_inverted;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "measurement" `Quick test_staleness_measurement;
          Alcotest.test_case "empty" `Quick test_staleness_empty_history;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "accepts atomic" `Quick test_linearizability_accepts_atomic;
          Alcotest.test_case "rejects inversion" `Quick test_linearizability_rejects_inversion;
          Alcotest.test_case "rejects phantom" `Quick test_linearizability_rejects_phantom;
          Alcotest.test_case "bails out" `Quick test_linearizability_bails_out;
        ] );
      qsuite "spec-props"
        [
          prop_sequential_histories_regular;
          prop_stale_reads_flagged;
          prop_atomicity_equivalence;
        ];
    ]
