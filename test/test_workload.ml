(* Tests for the workload layer: the random generator, the table
   renderer, and (smoke-level, small parameters) every experiment
   runner, asserting the qualitative shape each experiment exists to
   show. *)

open Dds_sim
open Dds_net
open Dds_spec
open Dds_core
open Dds_workload

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let time = Time.of_int

module Sync_d = Deployment.Make (Sync_register)
module G = Generator.Make (Sync_d)

(* ------------------------------------------------------------------ *)
(* Generator *)

let sync_deploy ?(seed = 3) ?(churn = 0.0) () =
  Sync_d.create
    (Deployment.default_config ~seed ~n:10 ~delay:(Delay.synchronous ~delta:3)
       ~churn_rate:churn)
    (Sync_register.default_params ~delta:3)

let test_generator_rates () =
  let d = sync_deploy () in
  G.run d { Generator.read_rate = 2.0; write_every = 10; start = time 1; until = time 100 };
  Sync_d.run_until d (time 120);
  let h = Sync_d.history d in
  (* read_rate 2.0 over 100 ticks: exactly 200 reads (integer part is
     deterministic). Writes at ticks 10,20,...,100: 10 writes. *)
  check_int "reads" 200 (List.length (History.completed_reads h));
  check_int "writes" 10 (List.length (History.completed_writes h))

let test_generator_fractional_rate () =
  let d = sync_deploy () in
  G.run d { Generator.read_rate = 0.5; write_every = 0; start = time 1; until = time 400 };
  Sync_d.run_until d (time 420);
  let reads = List.length (History.completed_reads (Sync_d.history d)) in
  (* Bernoulli(0.5) per tick over 400 ticks: expect ~200, loose bounds. *)
  check_bool "fractional rate honoured" true (reads > 120 && reads < 280);
  check_int "write_every=0 disables writes" 0
    (List.length (History.completed_writes (Sync_d.history d)))

let test_generator_distinct_write_data () =
  let d = sync_deploy () in
  G.run d { Generator.read_rate = 0.0; write_every = 5; start = time 1; until = time 200 };
  Sync_d.run_until d (time 220);
  let report = Sync_d.regularity d in
  check_bool "distinct data" true report.Regularity.distinct_data;
  check_bool "sequential writes" true report.Regularity.writes_sequential

(* ------------------------------------------------------------------ *)
(* Report rendering *)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  scan 0

let test_report_rendering () =
  let r =
    Report.make ~title:"demo" ~headers:[ "a"; "bb" ] ~notes:[ "a note" ]
      [ [ "1"; "2" ]; [ "333"; Report.cell_float 1.5 ] ]
  in
  let s = Format.asprintf "%a" Report.pp r in
  check_bool "title present" true (contains s "== demo ==");
  check_bool "cells present" true (contains s "333");
  check_bool "note present" true (contains s "a note");
  check Alcotest.string "int cell" "42" (Report.cell_int 42);
  check Alcotest.string "nan cell" "-" (Report.cell_float Float.nan);
  check Alcotest.string "bool cell" "yes" (Report.cell_bool true)

(* ------------------------------------------------------------------ *)
(* Experiment runners: small-parameter smoke tests asserting shape *)

let test_lemma2_shape () =
  let rows = Sweep.lemma2 ~n:20 ~delta:2 ~ratios:[ 0.3; 0.8 ] ~horizon:200 ~seed:1 () in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Sweep.lemma2_row) ->
      check_bool "min positive below threshold" true (r.Sweep.l2_measured_min > 0);
      check_bool "instant >= window" true
        (r.Sweep.l2_instant_min >= r.Sweep.l2_measured_min))
    rows

let test_sync_safety_cliff () =
  let rows =
    Sweep.sync_safety ~on_empty:Sync_register.Adopt_bottom ~n:20 ~delta:3
      ~ratios:[ 0.5; 3.0 ]
      ~seeds:[ 1; 2; 3 ]
      ~horizon:300 ()
  in
  match rows with
  | [ below; above ] ->
    check_int "clean below threshold" 0 below.Sweep.sf_violations;
    check_bool "violations above threshold" true (above.Sweep.sf_violations > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_sync_latency_bounds () =
  let delta = 4 in
  let rows = Sweep.sync_latency ~n:15 ~delta ~c:0.01 ~horizon:400 ~seed:2 in
  List.iter
    (fun (r : Sweep.latency_row) ->
      let s = r.Sweep.lat_stats in
      if Stats.count s > 0 then
        match r.Sweep.lat_op with
        | "join" -> check_bool "join <= 3 delta" true (Stats.max_value s <= float_of_int (3 * delta))
        | "read" -> check (Alcotest.float 1e-9) "read = 0" 0.0 (Stats.max_value s)
        | "write" -> check (Alcotest.float 1e-9) "write = delta" (float_of_int delta) (Stats.max_value s)
        | _ -> ())
    rows

let test_async_series_monotone () =
  let rows = Sweep.async_series ~horizons:[ 300; 900 ] () in
  match rows with
  | [ a; b ] ->
    check_bool "staleness grows" true (b.Sweep.as_max_staleness > a.Sweep.as_max_staleness)
  | _ -> Alcotest.fail "expected two rows"

let test_es_boundary_fail_safe () =
  let rows = Sweep.es_boundary ~n:8 ~rates:[ 0.0; 0.2 ] ~horizon:300 ~seed:4 () in
  match rows with
  | [ calm; storm ] ->
    check_int "no violations calm" 0 calm.Sweep.bd_violations;
    check_int "no violations under erosion either (fail-safe)" 0 storm.Sweep.bd_violations;
    check_bool "liveness lost under erosion" true
      (storm.Sweep.bd_pending + storm.Sweep.bd_aborted > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_abd_versus_shape () =
  let rows = Sweep.abd_vs_dynamic ~n:12 ~delta:3 ~c:0.03 ~horizon:600 ~seed:5 () in
  let find p = List.find (fun (r : Sweep.versus_row) -> r.Sweep.vs_protocol = p) rows in
  let abd = find "abd" and sync = find "sync" and es = find "es" in
  check_bool "abd freezes early" true
    (abd.Sweep.vs_last_completed_at < sync.Sweep.vs_last_completed_at);
  check_bool "dynamic protocols keep going" true
    (sync.Sweep.vs_completed > (10 * abd.Sweep.vs_completed)
    && es.Sweep.vs_completed > (10 * abd.Sweep.vs_completed));
  check_int "nobody violates" 0
    (abd.Sweep.vs_violations + sync.Sweep.vs_violations + es.Sweep.vs_violations)

let test_msg_complexity_formulas () =
  let rows = Sweep.msg_complexity ~ns:[ 10 ] ~delta:3 ~seed:6 () in
  let find p = List.find (fun (r : Sweep.msg_row) -> r.Sweep.mc_protocol = p) rows in
  let sync = find "sync" in
  (* Fast reads cost nothing; a write is one broadcast = n transmissions. *)
  check (Alcotest.float 1e-9) "sync read free" 0.0 sync.Sweep.mc_per_read;
  check (Alcotest.float 1e-9) "sync write = n" 10.0 sync.Sweep.mc_per_write;
  let es = find "es" in
  (* ES read: broadcast (n) + n replies + n acks = 3n with all active. *)
  check (Alcotest.float 1e-9) "es read = 3n" 30.0 es.Sweep.mc_per_read;
  check_bool "es write costs more than read" true
    (es.Sweep.mc_per_write > es.Sweep.mc_per_read)

let test_timed_quorum_decay_shape () =
  let rows = Sweep.timed_quorum ~n:20 ~cs:[ 0.01; 0.1 ] ~lifetime:15 ~trials:100 ~seed:7 () in
  match rows with
  | [ slow; fast ] ->
    check_bool "hold rate decreases with churn" true
      (slow.Sweep.tq_hold_rate >= fast.Sweep.tq_hold_rate);
    check_bool "measured tracks expectation" true
      (Float.abs (slow.Sweep.tq_measured_survivors -. slow.Sweep.tq_expected_survivors)
      < 2.0)
  | _ -> Alcotest.fail "expected two rows"

let test_churn_threshold_sanity () =
  let rows = Sweep.churn_threshold ~n:16 ~deltas:[ 2 ] ~seeds:[ 1; 2 ] ~horizon:200 () in
  match rows with
  | [ r ] ->
    check_bool "empirical threshold positive" true (r.Sweep.th_empirical > 0.0);
    check_bool "at least half the paper bound" true
      (r.Sweep.th_empirical >= 0.5 *. r.Sweep.th_paper_bound)
  | _ -> Alcotest.fail "expected one row"

let test_bursty_churn_shape () =
  let rows = Sweep.bursty_churn ~n:20 ~delta:3 ~seeds:[ 1; 2; 3 ] ~horizon:400 () in
  (match rows with
  | constant :: _ ->
    check_int "constant profile at 0.6x bound is clean" 0 constant.Sweep.br_violations
  | [] -> Alcotest.fail "no rows");
  let worst = List.nth rows (List.length rows - 1) in
  check_bool "worst burst breaks safety or liveness" true
    (worst.Sweep.br_violations + worst.Sweep.br_stuck_joins > 0)

let test_message_loss_shape () =
  let rows = Sweep.message_loss ~n:10 ~delta:3 ~losses:[ 0.0; 0.25 ] ~horizon:300 ~seed:8 () in
  let get proto loss =
    List.find
      (fun (r : Sweep.loss_row) -> r.Sweep.ls_protocol = proto && r.Sweep.ls_loss = loss)
      rows
  in
  check_int "sync clean without loss" 0 (get "sync" 0.0).Sweep.ls_violations;
  check_int "es clean without loss" 0 (get "es" 0.0).Sweep.ls_violations;
  check_bool "sync loses safety under loss" true ((get "sync" 0.25).Sweep.ls_violations > 0);
  let es_lossy = get "es" 0.25 in
  check_int "es never violates" 0 es_lossy.Sweep.ls_violations;
  check_bool "es loses liveness instead" true
    (es_lossy.Sweep.ls_completed < (get "es" 0.0).Sweep.ls_completed)

let test_geo_speed_shape () =
  let rows = Sweep.geo_speed ~speeds:[ 1.0; 16.0 ] ~horizon:400 ~seed:5 () in
  match rows with
  | [ slow; fast ] ->
    check_bool "churn grows with speed" true (fast.Sweep.geo_churn > slow.Sweep.geo_churn);
    check_bool "slow zone is alive" true (slow.Sweep.geo_joins > 20);
    check_int "fast zone starves joins" 0 fast.Sweep.geo_joins;
    check_int "never corrupt" 0 (slow.Sweep.geo_violations + fast.Sweep.geo_violations)
  | _ -> Alcotest.fail "expected two rows"

let test_quorum_ablation_shape () =
  let rows =
    Sweep.quorum_ablation ~loss:0.3 ~n:10 ~quorums:[ 1; 6 ] ~c:0.01 ~horizon:800 ~seed:1 ()
  in
  match rows with
  | [ tiny; majority ] ->
    check_bool "tiny quorum goes stale" true (tiny.Sweep.qa_violations > 0);
    check_int "majority quorum never stale" 0 majority.Sweep.qa_violations;
    check_bool "majority pays liveness under loss" true
      (majority.Sweep.qa_completed < tiny.Sweep.qa_completed)
  | _ -> Alcotest.fail "expected two rows"

let test_session_models_shape () =
  let rows = Sweep.session_models ~n:20 ~delta:3 ~mean:15.0 ~horizon:600 ~seed:59 () in
  let find prefix =
    List.find
      (fun (r : Sweep.session_row) ->
        String.length r.Sweep.ss_model >= String.length prefix
        && String.sub r.Sweep.ss_model 0 (String.length prefix) = prefix)
      rows
  in
  check_int "constant model clean" 0 (find "constant").Sweep.ss_violations;
  check_int "geometric model clean" 0 (find "geometric").Sweep.ss_violations;
  check_bool "synchronized cohorts break the register" true
    ((find "fixed").Sweep.ss_violations > 100);
  check_int "synchronized cohorts empty the window" 0 (find "fixed").Sweep.ss_min_window

let test_delta_calibration_shape () =
  let rows =
    Sweep.delta_calibration ~n:15 ~actual:6 ~believed:[ 3; 6; 10 ] ~horizon:500 ~seed:53 ()
  in
  match rows with
  | [ under; exact; over ] ->
    check_bool "underestimating violates" true (under.Sweep.cb_violations > 0);
    check_int "exact is safe" 0 exact.Sweep.cb_violations;
    check_int "overestimating is safe" 0 over.Sweep.cb_violations;
    check_bool "overestimating is slower" true (over.Sweep.cb_join_mean > exact.Sweep.cb_join_mean)
  | _ -> Alcotest.fail "expected three rows"

let test_join_wait_optimization_shape () =
  let rows = Sweep.join_wait_optimization ~n:12 ~delta:6 ~p2ps:[ 1 ] ~horizon:400 ~seed:9 () in
  match rows with
  | [ baseline; optimized ] ->
    check_bool "optimized joins faster" true
      (optimized.Sweep.jo_join_mean < baseline.Sweep.jo_join_mean);
    check_int "baseline safe" 0 baseline.Sweep.jo_violations;
    check_int "optimized safe" 0 optimized.Sweep.jo_violations
  | _ -> Alcotest.fail "expected two rows"

(* Every table renderer must produce rows whose width matches its
   header — guards against column drift as experiments evolve. *)
let test_tables_column_consistency () =
  let consistent (r : Report.t) =
    let w = List.length r.Report.headers in
    List.for_all (fun row -> List.length row = w) r.Report.rows
    && r.Report.rows <> []
  in
  let check_table name t = check_bool name true (consistent t) in
  check_table "inversion" (Tables.inversion (Scenario.inversion ()));
  check_table "fig3"
    (Tables.fig3 (Scenario.fig3 ~join_wait:false) (Scenario.fig3 ~join_wait:true));
  check_table "lemma2"
    (Tables.lemma2 ~n:20 ~delta:2
       (Sweep.lemma2 ~n:20 ~delta:2 ~ratios:[ 0.5 ] ~horizon:100 ~seed:1 ()));
  check_table "sync_safety"
    (Tables.sync_safety ~n:10 ~delta:3 ~variant:"x"
       (Sweep.sync_safety ~n:10 ~delta:3 ~ratios:[ 0.5 ] ~seeds:[ 1 ] ~horizon:100 ()));
  check_table "latency"
    (Tables.latency ~title:"t" (Sweep.sync_latency ~n:10 ~delta:3 ~c:0.0 ~horizon:100 ~seed:1));
  check_table "async" (Tables.async_impossibility (Sweep.async_series ~horizons:[ 100 ] ()));
  check_table "boundary"
    (Tables.es_boundary ~n:8 (Sweep.es_boundary ~n:8 ~rates:[ 0.0 ] ~horizon:100 ~seed:1 ()));
  check_table "versus"
    (Tables.abd_vs_dynamic ~n:8 ~c:0.02 ~horizon:200
       (Sweep.abd_vs_dynamic ~n:8 ~delta:3 ~c:0.02 ~horizon:200 ~seed:1 ()));
  check_table "msgs" (Tables.msg_complexity (Sweep.msg_complexity ~ns:[ 8 ] ~delta:3 ~seed:1 ()));
  check_table "timed quorum"
    (Tables.timed_quorum ~n:10
       (Sweep.timed_quorum ~n:10 ~cs:[ 0.02 ] ~lifetime:10 ~trials:20 ~seed:1 ()));
  check_table "threshold"
    (Tables.churn_threshold ~n:12
       (Sweep.churn_threshold ~n:12 ~deltas:[ 2 ] ~seeds:[ 1 ] ~horizon:100 ()));
  check_table "bursty"
    (Tables.bursty_churn ~n:12 ~delta:3
       (Sweep.bursty_churn ~n:12 ~delta:3 ~seeds:[ 1 ] ~horizon:150 ()));
  check_table "loss"
    (Tables.message_loss ~n:8
       (Sweep.message_loss ~n:8 ~delta:3 ~losses:[ 0.0 ] ~horizon:100 ~seed:1 ()));
  check_table "joinopt"
    (Tables.join_wait_optimization ~n:8 ~delta:4
       (Sweep.join_wait_optimization ~n:8 ~delta:4 ~p2ps:[ 1 ] ~horizon:150 ~seed:1 ()));
  check_table "broadcast"
    (Tables.broadcast_robustness ~n:8
       (Sweep.broadcast_robustness ~n:8 ~losses:[ 0.0 ] ~horizon:100 ~seed:1 ()));
  check_table "consensus"
    (Tables.consensus ~n:6 ~k:2
       (Sweep.consensus_under_churn ~n:6 ~k:2 ~cs:[ 0.0 ] ~horizon:200 ~seed:1 ()));
  check_table "geo"
    (Tables.geo_speed ~delta:3 (Sweep.geo_speed ~speeds:[ 1.0 ] ~horizon:150 ~seed:1 ()));
  check_table "quorum ablation"
    (Tables.quorum_ablation ~n:8 ~c:0.0 ~loss:0.0
       (Sweep.quorum_ablation ~n:8 ~quorums:[ 5 ] ~c:0.0 ~horizon:150 ~seed:1 ()));
  check_table "read repair"
    (Tables.read_repair ~n:8 (Sweep.read_repair_ablation ~n:8 ~horizon:150 ~seed:1 ()));
  check_table "calibration"
    (Tables.delta_calibration ~n:8 ~actual:4
       (Sweep.delta_calibration ~n:8 ~actual:4 ~believed:[ 4 ] ~horizon:150 ~seed:1 ()));
  check_table "sessions"
    (Tables.session_models ~n:10 ~delta:3
       (Sweep.session_models ~n:10 ~delta:3 ~mean:20.0 ~horizon:200 ~seed:1 ()))

let () =
  Alcotest.run "dds_workload"
    [
      ( "generator",
        [
          Alcotest.test_case "rates" `Quick test_generator_rates;
          Alcotest.test_case "fractional rate" `Quick test_generator_fractional_rate;
          Alcotest.test_case "distinct write data" `Quick test_generator_distinct_write_data;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
      ( "tables",
        [ Alcotest.test_case "column consistency" `Slow test_tables_column_consistency ] );
      ( "sweeps",
        [
          Alcotest.test_case "E4 lemma2 shape" `Quick test_lemma2_shape;
          Alcotest.test_case "E5 safety cliff" `Slow test_sync_safety_cliff;
          Alcotest.test_case "E6 latency bounds" `Quick test_sync_latency_bounds;
          Alcotest.test_case "E7 async monotone" `Quick test_async_series_monotone;
          Alcotest.test_case "E9 fail safe" `Quick test_es_boundary_fail_safe;
          Alcotest.test_case "E10 abd versus" `Slow test_abd_versus_shape;
          Alcotest.test_case "E11 msg formulas" `Quick test_msg_complexity_formulas;
          Alcotest.test_case "E12 quorum decay" `Quick test_timed_quorum_decay_shape;
          Alcotest.test_case "E13 threshold sanity" `Slow test_churn_threshold_sanity;
          Alcotest.test_case "E14 bursty shape" `Slow test_bursty_churn_shape;
          Alcotest.test_case "E15 loss shape" `Quick test_message_loss_shape;
          Alcotest.test_case "E16 join wait" `Quick test_join_wait_optimization_shape;
          Alcotest.test_case "E19 geo speed" `Slow test_geo_speed_shape;
          Alcotest.test_case "E22 delta calibration" `Slow test_delta_calibration_shape;
          Alcotest.test_case "E23 session models" `Slow test_session_models_shape;
          Alcotest.test_case "E20 quorum ablation" `Slow test_quorum_ablation_shape;
        ] );
    ]
